// Command acsched builds a static voltage schedule (ACS or WCS) for a task
// set and prints it as a table, a CSV, or an ASCII Gantt chart.
//
// Usage:
//
//	acsched -in taskset.json -objective acs -format gantt
//	taskgen -n 4 | acsched -objective wcs -format csv
//
// The built-in task sets are available without a file:
//
//	acsched -builtin cnc -ratio 0.1 -format table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		in        = flag.String("in", "", "task-set JSON file (default stdin; ignored with -builtin)")
		builtin   = flag.String("builtin", "", "built-in task set: cnc, gap, motivation")
		ratio     = flag.Float64("ratio", 0.5, "BCEC/WCEC ratio for built-in sets")
		util      = flag.Float64("util", 0.7, "utilisation for built-in sets")
		objective = flag.String("objective", "acs", "objective: acs or wcs")
		format    = flag.String("format", "table", "output: table, csv, gantt")
		subCap    = flag.Int("subcap", 0, "max sub-instances per instance (0 = unlimited)")
		sweeps    = flag.Int("sweeps", 0, "max coordinate-descent sweeps (0 = default)")
	)
	flag.Parse()

	set, err := loadSet(*in, *builtin, *ratio, *util)
	if err != nil {
		fail(err)
	}

	cfg := core.Config{MaxSweeps: *sweeps}
	cfg.Preempt.MaxSubsPerInstance = *subCap
	switch *objective {
	case "acs":
		cfg.Objective = core.AverageCase
	case "wcs":
		cfg.Objective = core.WorstCase
	default:
		fail(fmt.Errorf("unknown objective %q (want acs or wcs)", *objective))
	}

	if cfg.Objective == core.AverageCase {
		// Warm-start ACS from WCS, as the experiments do.
		wcsCfg := cfg
		wcsCfg.Objective = core.WorstCase
		if wcs, err := core.Build(set, wcsCfg); err == nil {
			cfg.WarmStart = wcs
		}
	}
	s, err := core.Build(set, cfg)
	if err != nil {
		fail(err)
	}

	switch *format {
	case "table":
		fmt.Printf("%s schedule for %s: %d sub-instances, objective energy %.6g (%d sweeps)\n",
			s.Objective, set, len(s.Plan.Subs), s.Energy, s.Sweeps)
		fmt.Print(trace.CSV(s))
	case "csv":
		fmt.Print(trace.CSV(s))
	case "gantt":
		fmt.Print(trace.Gantt(s, 100))
	default:
		fail(fmt.Errorf("unknown format %q (want table, csv, gantt)", *format))
	}
}

func loadSet(in, builtin string, ratio, util float64) (*task.Set, error) {
	switch builtin {
	case "cnc":
		return workload.CNC(ratio, util, nil)
	case "gap":
		return workload.GAP(ratio, util, nil)
	case "motivation":
		return experiments.MotivationSet()
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q (want cnc, gap, motivation)", builtin)
	}
	r := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var set task.Set
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("parsing task set: %w", err)
	}
	return &set, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "acsched:", err)
	os.Exit(1)
}
