package main

import (
	"strings"
	"testing"
)

// TestRunBuiltinTable: end-to-end smoke over the built-in motivation set —
// non-empty output naming the objective and at least one schedule row.
func TestRunBuiltinTable(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-builtin", "motivation", "-objective", "acs", "-format", "table"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "ACS schedule") {
		t.Fatalf("output does not name the objective:\n%s", got)
	}
	if len(strings.Split(got, "\n")) < 3 {
		t.Fatalf("suspiciously short output:\n%s", got)
	}
}

// TestRunDeterministic: two identical invocations print identical bytes.
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var out strings.Builder
		if err := run([]string{"-builtin", "cnc", "-ratio", "0.1", "-objective", "acs",
			"-format", "csv", "-starts", "4"}, strings.NewReader(""), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("output not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty output")
	}
}

// TestRunStdinJSON: a task set supplied on stdin round-trips through the
// JSON loader.
func TestRunStdinJSON(t *testing.T) {
	const set = `{"tasks":[{"name":"T1","period_ms":10,"wcec":4,"bcec":1,"acec":2,"ceff":1}]}`
	var out strings.Builder
	if err := run([]string{"-objective", "wcs", "-format", "csv"},
		strings.NewReader(set), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("empty output for stdin task set")
	}
}

// TestRunFlagErrors: bad flag values fail without writing a schedule.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-objective", "nope", "-builtin", "cnc"},
		{"-format", "nope", "-builtin", "cnc"},
		{"-builtin", "nope"},
		{"-no-such-flag"},
	} {
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
