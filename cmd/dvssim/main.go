// Command dvssim simulates the online DVS runtime over a task set: it builds
// the ACS and WCS static schedules, runs both under identical stochastic
// workloads, and reports energies, voltage statistics and the improvement
// percentage (the quantity Fig. 6 plots).
//
// Usage:
//
//	dvssim -builtin cnc -ratio 0.1 -reps 1000 -seed 7
//	taskgen -n 8 -ratio 0.1 | dvssim -reps 500
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// errDeadlineMiss distinguishes the warning exit (status 2) from hard
// failures (status 1).
var errDeadlineMiss = fmt.Errorf("deadline misses observed")

func main() {
	err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err == errDeadlineMiss {
		fmt.Fprintln(os.Stderr, "dvssim: WARNING: deadline misses observed")
		os.Exit(2)
	}
	cliutil.Exit("dvssim", err)
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("dvssim", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "task-set JSON file (default stdin; ignored with -builtin)")
		builtin = fs.String("builtin", "", "built-in task set: cnc, gap, motivation")
		ratio   = fs.Float64("ratio", 0.5, "BCEC/WCEC ratio for built-in sets")
		util    = fs.Float64("util", 0.7, "utilisation for built-in sets")
		reps    = fs.Int("reps", 1000, "hyper-periods to simulate")
		seed    = fs.Uint64("seed", 1, "workload seed")
		policy  = fs.String("policy", "greedy", "slack policy: greedy, static, nodvs")
		dist    = fs.String("dist", "paper", "workload distribution: paper, uniform, bimodal, acec, wcec")
		subCap  = fs.Int("subcap", 0, "max sub-instances per instance (0 = unlimited)")
		starts  = fs.Int("starts", 1, "solver multi-start count (>1 runs parallel starts)")
		simWork = fs.Int("simworkers", 0, "parallel hyper-period simulation workers (0 = GOMAXPROCS; results are identical for any value)")
		rtTrace = fs.Bool("trace", false, "export one hyper-period's runtime execution for the ACS schedule (observed vs predicted cycles per job, CSV + Gantt)")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}

	set, err := cliutil.LoadSet(stdin, *in, *builtin, *ratio, *util)
	if err != nil {
		return err
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		return err
	}
	d, err := parseDist(*dist)
	if err != nil {
		return err
	}

	pre := core.Config{Starts: *starts}
	pre.Preempt.MaxSubsPerInstance = *subCap
	wcsCfg := pre
	wcsCfg.Objective = core.WorstCase
	wcs, err := core.Build(set, wcsCfg)
	if err != nil {
		return fmt.Errorf("WCS: %w", err)
	}
	acsCfg := pre
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acs, err := core.Build(set, acsCfg)
	if err != nil {
		return fmt.Errorf("ACS: %w", err)
	}

	workers := *simWork
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cfg := sim.Config{Policy: pol, Hyperperiods: *reps, Seed: *seed, Dist: d, Workers: workers}
	imp, ra, rb, err := sim.Compare(acs, wcs, cfg)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "task set: %s (%d sub-instances)\n", set, len(acs.Plan.Subs))
	fmt.Fprintf(stdout, "policy=%s dist=%s reps=%d seed=%d\n", pol, *dist, *reps, *seed)
	report(stdout, "ACS", ra)
	report(stdout, "WCS", rb)
	fmt.Fprintf(stdout, "improvement of ACS over WCS: %.2f%%\n", imp)
	if *rtTrace {
		if err := writeRuntimeTrace(stdout, acs, d, *seed); err != nil {
			return err
		}
	}
	if ra.DeadlineMisses+rb.DeadlineMisses > 0 {
		return errDeadlineMiss
	}
	return nil
}

// writeRuntimeTrace draws one hyper-period of actual workloads from dist
// (seeded, so the export is deterministic per invocation) and prints the
// runtime-execution export for the ACS schedule: observed vs predicted
// cycles per job as CSV, plus the realised Gantt chart.
func writeRuntimeTrace(w io.Writer, acs *core.Schedule, d sim.Distribution, seed uint64) error {
	rng := stats.NewRNG(seed)
	actual := make([]float64, len(acs.Plan.Instances))
	for i := range actual {
		t := &acs.Plan.Set.Tasks[acs.Plan.Instances[i].TaskIndex]
		actual[i] = d(rng, t.BCEC, t.ACEC, t.WCEC)
	}
	csv, err := trace.RuntimeCSV(acs, actual)
	if err != nil {
		return err
	}
	gantt, err := trace.RuntimeGantt(acs, actual, 80)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nruntime execution trace (one hyper-period, seed %d):\n%s\n%s", seed, csv, gantt)
	return nil
}

func report(w io.Writer, name string, r *sim.Result) {
	fmt.Fprintf(w, "%s: energy=%.6g (per hyper-period %s) meanV=%.3f switches=%d misses=%d\n",
		name, r.Energy, r.PerHyperperiod.String(), r.MeanVoltage, r.Switches, r.DeadlineMisses)
}

func parsePolicy(s string) (sim.SlackPolicy, error) {
	switch s {
	case "greedy":
		return sim.Greedy, nil
	case "static":
		return sim.Static, nil
	case "nodvs":
		return sim.NoDVS, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseDist(s string) (sim.Distribution, error) {
	switch s {
	case "paper":
		return sim.PaperDist, nil
	case "uniform":
		return sim.UniformDist, nil
	case "bimodal":
		return sim.BimodalDist, nil
	case "acec":
		return sim.AlwaysACECDist, nil
	case "wcec":
		return sim.AlwaysWCECDist, nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", s)
	}
}
