// Command dvssim simulates the online DVS runtime over a task set: it builds
// the ACS and WCS static schedules, runs both under identical stochastic
// workloads, and reports energies, voltage statistics and the improvement
// percentage (the quantity Fig. 6 plots).
//
// Usage:
//
//	dvssim -builtin cnc -ratio 0.1 -reps 1000 -seed 7
//	taskgen -n 8 -ratio 0.1 | dvssim -reps 500
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	var (
		in      = flag.String("in", "", "task-set JSON file (default stdin; ignored with -builtin)")
		builtin = flag.String("builtin", "", "built-in task set: cnc, gap, motivation")
		ratio   = flag.Float64("ratio", 0.5, "BCEC/WCEC ratio for built-in sets")
		util    = flag.Float64("util", 0.7, "utilisation for built-in sets")
		reps    = flag.Int("reps", 1000, "hyper-periods to simulate")
		seed    = flag.Uint64("seed", 1, "workload seed")
		policy  = flag.String("policy", "greedy", "slack policy: greedy, static, nodvs")
		dist    = flag.String("dist", "paper", "workload distribution: paper, uniform, bimodal, acec, wcec")
		subCap  = flag.Int("subcap", 0, "max sub-instances per instance (0 = unlimited)")
	)
	flag.Parse()

	set, err := loadSet(*in, *builtin, *ratio, *util)
	if err != nil {
		fail(err)
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		fail(err)
	}
	d, err := parseDist(*dist)
	if err != nil {
		fail(err)
	}

	pre := core.Config{}
	pre.Preempt.MaxSubsPerInstance = *subCap
	wcsCfg := pre
	wcsCfg.Objective = core.WorstCase
	wcs, err := core.Build(set, wcsCfg)
	if err != nil {
		fail(fmt.Errorf("WCS: %w", err))
	}
	acsCfg := pre
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acs, err := core.Build(set, acsCfg)
	if err != nil {
		fail(fmt.Errorf("ACS: %w", err))
	}

	cfg := sim.Config{Policy: pol, Hyperperiods: *reps, Seed: *seed, Dist: d}
	imp, ra, rb, err := sim.Compare(acs, wcs, cfg)
	if err != nil {
		fail(err)
	}

	fmt.Printf("task set: %s (%d sub-instances)\n", set, len(acs.Plan.Subs))
	fmt.Printf("policy=%s dist=%s reps=%d seed=%d\n", pol, *dist, *reps, *seed)
	report("ACS", ra)
	report("WCS", rb)
	fmt.Printf("improvement of ACS over WCS: %.2f%%\n", imp)
	if ra.DeadlineMisses+rb.DeadlineMisses > 0 {
		fmt.Fprintln(os.Stderr, "dvssim: WARNING: deadline misses observed")
		os.Exit(2)
	}
}

func report(name string, r *sim.Result) {
	fmt.Printf("%s: energy=%.6g (per hyper-period %s) meanV=%.3f switches=%d misses=%d\n",
		name, r.Energy, r.PerHyperperiod.String(), r.MeanVoltage, r.Switches, r.DeadlineMisses)
}

func parsePolicy(s string) (sim.SlackPolicy, error) {
	switch s {
	case "greedy":
		return sim.Greedy, nil
	case "static":
		return sim.Static, nil
	case "nodvs":
		return sim.NoDVS, nil
	default:
		return 0, fmt.Errorf("unknown policy %q", s)
	}
}

func parseDist(s string) (sim.Distribution, error) {
	switch s {
	case "paper":
		return sim.PaperDist, nil
	case "uniform":
		return sim.UniformDist, nil
	case "bimodal":
		return sim.BimodalDist, nil
	case "acec":
		return sim.AlwaysACECDist, nil
	case "wcec":
		return sim.AlwaysWCECDist, nil
	default:
		return nil, fmt.Errorf("unknown distribution %q", s)
	}
}

func loadSet(in, builtin string, ratio, util float64) (*task.Set, error) {
	switch builtin {
	case "cnc":
		return workload.CNC(ratio, util, nil)
	case "gap":
		return workload.GAP(ratio, util, nil)
	case "motivation":
		return experiments.MotivationSet()
	case "":
	default:
		return nil, fmt.Errorf("unknown builtin %q (want cnc, gap, motivation)", builtin)
	}
	r := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var set task.Set
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("parsing task set: %w", err)
	}
	return &set, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "dvssim:", err)
	os.Exit(1)
}
