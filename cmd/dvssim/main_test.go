package main

import (
	"strings"
	"testing"
)

// TestRunBuiltinCNC: end-to-end smoke — build ACS and WCS for the CNC set,
// simulate both, and report the improvement line.
func TestRunBuiltinCNC(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-builtin", "cnc", "-ratio", "0.1", "-reps", "20", "-seed", "7"},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"task set:", "ACS: energy=", "WCS: energy=", "improvement of ACS over WCS:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

// TestRunDeterministic: identical invocations (including a multi-start
// solve) print identical bytes.
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var out strings.Builder
		if err := run([]string{"-builtin", "motivation", "-reps", "10", "-seed", "3",
			"-starts", "3"}, strings.NewReader(""), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("output not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestRunTraceExport: -trace appends the runtime-execution export (observed
// vs predicted cycles per job, CSV + Gantt) deterministically.
func TestRunTraceExport(t *testing.T) {
	render := func() string {
		var out strings.Builder
		if err := run([]string{"-builtin", "motivation", "-reps", "5", "-seed", "3", "-trace"},
			strings.NewReader(""), &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got := render()
	for _, want := range []string{
		"runtime execution trace",
		"order,task,instance,sub,release_ms,deadline_ms,predicted_cycles,observed_cycles,",
		"runtime execution (greedy reclamation)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
	if got != render() {
		t.Error("trace export not deterministic")
	}
}

// TestRunFlagErrors: unknown policies, distributions, builtins, and flags
// are rejected.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-policy", "nope", "-builtin", "cnc"},
		{"-dist", "nope", "-builtin", "cnc"},
		{"-builtin", "nope"},
		{"-no-such-flag"},
	} {
		var out strings.Builder
		if err := run(args, strings.NewReader(""), &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
