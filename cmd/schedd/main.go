// Command schedd is the scheduling daemon: it serves the offline ACS/WCS
// synthesis pipeline as a long-running HTTP/JSON service (internal/server,
// DESIGN.md §7).
//
// Usage:
//
//	schedd -addr :8372
//	schedd -addr :8372 -cachemb 64 -batch 32 -batchwindow 1ms -starts 4
//	schedd -addr :8371 -peers "p0=http://h0:8371,p1=http://h1:8371" -self p0
//
// With -peers/-self the daemon joins a fleet (internal/fleet, DESIGN.md §11):
// it serves as one consistent-hash peer AND as a fleet front end — requests
// arriving from clients are routed to the key's owner (possibly itself, or a
// replica on failure), requests already routed by a peer are served locally,
// and session checkpoints and schedule records replicate to the key's R ring
// owners so any replica can take over a dead owner's sessions.
//
// Endpoints:
//
//	POST /v1/schedules              submit a task set → admission, synthesis,
//	                                schedule + predicted energy
//	GET  /v1/schedules/{fp}         re-fetch a submitted schedule by fingerprint
//	POST /v1/compare                simulated ACS-vs-WCS comparison
//	POST /v1/sessions               open a feedback session: streaming
//	                                estimators + drift detection + adaptive
//	                                re-solving (internal/feedback, DESIGN.md §8)
//	POST /v1/sessions/{id}/observe  stream per-hyper-period execution
//	                                observations → "no change" or a re-solved
//	                                schedule with its fingerprint
//	GET  /v1/sessions/{id}          learned estimator and adaptation state
//	GET  /v1/stats                  cache, batching, session and request counters
//	GET  /metrics                   Prometheus text exposition of the same
//	                                registry /v1/stats reads (DESIGN.md §13)
//	GET  /v1/healthz                liveness
//
// Responses to submit/get/compare are byte-deterministic per request body
// regardless of batch composition, worker count, or cache state; session
// schedule payloads are deterministic per (creation body, observation
// history); see DESIGN.md §7–§8 for the contracts and cmd/schedload for the
// matching load generator / throughput benchmark.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/fleet"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/trace"
)

func main() {
	cliutil.Exit("schedd", run(context.Background(), os.Args[1:], os.Stdout, nil))
}

// run parses flags, binds the listener, and serves until ctx is canceled.
// When ready is non-nil the bound address is sent to it once the listener is
// live (the hook the smoke test drives the daemon through).
func run(ctx context.Context, args []string, stdout io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("schedd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8372", "listen address")
		workers     = fs.Int("workers", 0, "grid worker-pool width (0 = GOMAXPROCS; responses identical for any value)")
		cacheMB     = fs.Int64("cachemb", 256, "schedule/plan cache cap in MiB (LRU eviction; <0 = unbounded)")
		batch       = fs.Int("batch", 16, "micro-batch size: max requests solved as one grid job set")
		batchWindow = fs.Duration("batchwindow", 2*time.Millisecond, "micro-batch collection window")
		starts      = fs.Int("starts", 0, "default solver multi-start count (0/1 = single)")
		simWorkers  = fs.Int("simworkers", 0, "simulation workers per compare (0 = GOMAXPROCS; responses identical for any value)")
		simReps     = fs.Int("hyperperiods", 200, "default hyper-periods per compare simulation")
		maxTasks    = fs.Int("maxtasks", 64, "admission limit on tasks per request")
		storeDir    = fs.String("store-dir", "", "persistent store directory: solved schedules, submitted requests and session checkpoints survive restarts (empty = memory only)")
		storeSync   = fs.Bool("store-sync", false, "fsync the persistent log after every append")
		inflight    = fs.Int("inflight", 256, "max concurrently admitted solving requests (overload beyond it queues, then sheds 503 + Retry-After)")
		queueWait   = fs.Duration("queuewait", 100*time.Millisecond, "how long an over-limit request may queue for a seat before being shed")
		solveBudget = fs.Duration("solvebudget", 0, "per-request ACS refinement budget; past it the request is answered with the WCS fallback marked degraded (0 = unlimited)")
		peersFlag   = fs.String("peers", "", "fleet mode: comma-separated name=url peer table for the whole fleet, this daemon included (e.g. \"p0=http://h0:8372,p1=http://h1:8372\")")
		selfFlag    = fs.String("self", "", "fleet mode: this daemon's name in -peers")
		replicas    = fs.Int("replicas", 2, "fleet mode: replication factor R — each key's records and checkpoints live on its first R ring owners")
		vnodes      = fs.Int("vnodes", fleet.DefaultVnodes, "fleet mode: consistent-hash virtual nodes per peer")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this loopback address (e.g. 127.0.0.1:6060; off by default)")
		traceDir    = fs.String("trace-dir", "", "record each session's observation stream to DIR/<session>.trace (replayable with adaptsim -replay)")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	memoBytes := *cacheMB << 20
	if *cacheMB < 0 {
		memoBytes = -1
	}
	opts := server.Options{
		Workers:         *workers,
		MemoBytes:       memoBytes,
		BatchSize:       *batch,
		BatchWindow:     *batchWindow,
		Starts:          *starts,
		SimWorkers:      *simWorkers,
		SimHyperperiods: *simReps,
		MaxTasks:        *maxTasks,
		MaxInflight:     *inflight,
		QueueWait:       *queueWait,
		SolveBudget:     *solveBudget,
		Logf:            log.Printf,
	}
	if *traceDir != "" {
		rec, err := newTraceRecorder(*traceDir)
		if err != nil {
			return fmt.Errorf("-trace-dir: %w", err)
		}
		defer rec.Close()
		opts.ObserveSink = rec.observe
	}
	var blobLocal server.BlobStore
	if *storeDir != "" {
		disk, err := store.Open(*storeDir, store.Options{Sync: *storeSync})
		if err != nil {
			return err
		}
		defer disk.Close()
		// Tiered residency: the LRU memory tier keeps its -cachemb bound, the
		// disk log underneath makes solves durable. Warm restarts repopulate
		// the hot tier on demand (disk hits promote). Checkpoints flow through
		// the tier too, so the circuit breaker (DESIGN.md §10) sits between
		// the daemon and the device on every durable path: a dying disk
		// degrades the daemon to memory-only, it never fails a request.
		tiered := store.NewTiered(grid.NewMemStore(memoBytes), disk)
		opts.Store = tiered
		opts.Checkpoints = tiered
		blobLocal = tiered
	}

	// Fleet mode (DESIGN.md §11): this daemon becomes one peer of a
	// consistent-hash fleet. Its checkpoint writes replicate to the ring
	// owners, it serves the peer-replication endpoints, and its public
	// surface becomes the fleet router — locally-owned requests short-circuit
	// back to this very server via the forwarded-marker header.
	var ring *fleet.Ring
	var topo *fleet.Topology
	if *peersFlag != "" {
		urls, err := parseFleetPeers(*peersFlag)
		if err != nil {
			return err
		}
		if _, ok := urls[*selfFlag]; !ok {
			return fmt.Errorf("-self %q is not a name in -peers", *selfFlag)
		}
		names := make([]string, 0, len(urls))
		for name := range urls {
			names = append(names, name)
		}
		ring = fleet.NewRing(names, *vnodes)
		// Per-peer timeout matches the HTTP server's WriteTimeout below: a
		// long solve is legitimate; a dead peer refuses connections fast.
		topo = fleet.NewTopology(urls, fleet.TopologyOptions{PeerTimeout: 2 * time.Minute})
		defer topo.Close()
		if blobLocal == nil {
			blobLocal = store.NewMemBlobs()
		}
		opts.Checkpoints = fleet.NewReplicatedBlobs(fleet.ReplicatedBlobsOptions{
			Local: blobLocal, Self: *selfFlag, Ring: ring, Topo: topo,
			Replicas: *replicas, Logf: log.Printf,
		})
		opts.InternalBlobs = blobLocal
	} else if *selfFlag != "" {
		return fmt.Errorf("-self requires -peers")
	}
	srv := server.New(opts)
	defer srv.Close()

	if *storeDir != "" || *peersFlag != "" {
		restored, err := srv.RestoreSessions(ctx)
		if err != nil {
			return fmt.Errorf("restoring sessions: %w", err)
		}
		if *storeDir != "" {
			fmt.Fprintf(stdout, "schedd store %s: restored %d sessions\n", *storeDir, restored)
		}
	}

	handler := srv.Handler()
	if topo != nil {
		router := fleet.NewRouter(fleet.Options{
			Ring: ring, Topology: topo, Replicas: *replicas,
			Starts: *starts, MaxTasks: *maxTasks, Logf: log.Printf,
		})
		// One /metrics scrape per peer covers both surfaces: the fleet
		// router's routing counters register into the local server's
		// registry.
		router.RegisterMetrics(srv.Metrics())
		local := srv.Handler()
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Already-routed traffic, peer replication, and metrics scrapes
			// go straight to the local server (each peer reports its own
			// registry — scraping is per-instance, never forwarded);
			// everything else enters through the fleet router.
			if r.Header.Get("X-Fleet-Forwarded") != "" || strings.HasPrefix(r.URL.Path, "/v1/internal/") ||
				r.URL.Path == "/metrics" {
				local.ServeHTTP(w, r)
				return
			}
			router.ServeHTTP(w, r)
		})
		fmt.Fprintf(stdout, "schedd fleet: self=%s peers=%d replicas=%d vnodes=%d\n",
			*selfFlag, len(ring.Peers()), *replicas, *vnodes)
	}

	// The pprof listener is a separate loopback-only server: profiling
	// never rides the public port, and the flag is off by default. The
	// metric registry is mounted there too, so an operator can scrape a
	// daemon whose serving port is saturated.
	if *pprofAddr != "" {
		host, _, err := net.SplitHostPort(*pprofAddr)
		if err != nil {
			return fmt.Errorf("-pprof: %w", err)
		}
		if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
			return fmt.Errorf("-pprof must bind a loopback address, got %q", *pprofAddr)
		}
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return err
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pmux.Handle("GET /metrics", srv.Metrics())
		ps := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		pprofErr := make(chan error, 1)
		go func() { pprofErr <- ps.Serve(pln) }()
		defer func() {
			ps.Close()
			<-pprofErr // the serve goroutine has exited (leak-checked)
		}()
		fmt.Fprintf(stdout, "schedd pprof on %s\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "schedd listening on %s (batch %d/%v, cache %d MiB, workers %d)\n",
		ln.Addr(), *batch, *batchWindow, *cacheMB, *workers)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	// WriteTimeout bounds the whole handler (headers read → response written):
	// it must dominate any legitimate solve, so it is generous — a stuck
	// handler is reaped, a slow solve is not. IdleTimeout reaps abandoned
	// keep-alive connections.
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		// Cancel in-flight solves *before* waiting on their handlers:
		// Shutdown blocks until requests drain, and a long solve only stops
		// at its next sweep boundary once the server's base context fires.
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
		err = <-serveErr
	case err = <-serveErr:
	}
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// traceRecorder is the -trace-dir observe sink: every successfully folded
// observation batch appends to DIR/<session>.trace in the internal/trace
// stream format — the same files adaptsim -record writes and adaptsim
// -replay (or feedback.RunReplay) consumes. Each batch is flushed as it
// lands, so a crashed daemon leaves every recording's complete prefix. A
// session restored on another peer starts a fresh file there; recordings
// are per-instance, like every other observability surface.
type traceRecorder struct {
	dir     string
	mu      sync.Mutex
	files   map[string]*os.File
	writers map[string]*trace.StreamWriter
}

func newTraceRecorder(dir string) (*traceRecorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &traceRecorder{
		dir:     dir,
		files:   make(map[string]*os.File),
		writers: make(map[string]*trace.StreamWriter),
	}, nil
}

// observe implements server.Options.ObserveSink. Failures are logged, never
// surfaced: recording is observational and must not fail an observe.
func (tr *traceRecorder) observe(sessionID string, model *task.Set, rows [][]float64) {
	if len(rows) == 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	sw, ok := tr.writers[sessionID]
	if !ok {
		// Session ids are [A-Za-z0-9._-] by admission, so they are safe
		// file names.
		f, err := os.Create(filepath.Join(tr.dir, sessionID+".trace"))
		if err != nil {
			log.Printf("schedd: trace recorder: %v", err)
			return
		}
		sw, err = trace.NewStreamWriter(f, model, len(rows[0]))
		if err != nil {
			f.Close()
			log.Printf("schedd: trace recorder %s: %v", sessionID, err)
			return
		}
		tr.files[sessionID] = f
		tr.writers[sessionID] = sw
	}
	if err := sw.Append(rows); err != nil {
		log.Printf("schedd: trace recorder %s: %v", sessionID, err)
		return
	}
	if err := sw.Flush(); err != nil {
		log.Printf("schedd: trace recorder %s: %v", sessionID, err)
	}
}

// Close flushes and closes every recording.
func (tr *traceRecorder) Close() {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	for id, sw := range tr.writers {
		if err := sw.Flush(); err != nil {
			log.Printf("schedd: trace recorder %s: %v", id, err)
		}
		tr.files[id].Close()
	}
	tr.writers = make(map[string]*trace.StreamWriter)
	tr.files = make(map[string]*os.File)
}

// parseFleetPeers parses the -peers table: comma-separated name=url entries.
func parseFleetPeers(s string) (map[string]string, error) {
	urls := make(map[string]string)
	for _, part := range strings.Split(s, ",") {
		name, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want name=url)", part)
		}
		if _, dup := urls[name]; dup {
			return nil, fmt.Errorf("duplicate peer name %q in -peers", name)
		}
		urls[name] = strings.TrimSuffix(url, "/")
	}
	return urls, nil
}
