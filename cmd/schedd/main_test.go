package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestRunServeAndShutdown boots the daemon on an ephemeral port, drives one
// request through real HTTP, and shuts it down through context cancellation.
func TestRunServeAndShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	var out strings.Builder
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-batchwindow", "1ms"}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v1/schedules", "application/json",
		strings.NewReader(`{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit through daemon: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"fingerprint"`) {
		t.Fatalf("implausible response: %s", body)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "schedd listening on") {
		t.Errorf("startup banner missing: %q", out.String())
	}
}

// TestRunFlagErrors: bad invocations fail without binding a listener.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-addr", "127.0.0.1:0", "trailing"},
		{"-addr", "999.999.999.999:99999"},
	} {
		var out strings.Builder
		if err := run(context.Background(), args, &out, nil); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
