package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/trace"
)

// TestRunServeAndShutdown boots the daemon on an ephemeral port, drives one
// request through real HTTP, and shuts it down through context cancellation.
func TestRunServeAndShutdown(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	var out strings.Builder
	errCh := make(chan error, 1)
	go func() {
		errCh <- run(ctx, []string{"-addr", "127.0.0.1:0", "-batchwindow", "1ms"}, &out, ready)
	}()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v1/schedules", "application/json",
		strings.NewReader(`{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit through daemon: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"fingerprint"`) {
		t.Fatalf("implausible response: %s", body)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("clean shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(out.String(), "schedd listening on") {
		t.Errorf("startup banner missing: %q", out.String())
	}
}

// TestRunFlagErrors: bad invocations fail without binding a listener.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-addr", "127.0.0.1:0", "trailing"},
		{"-addr", "999.999.999.999:99999"},
	} {
		var out strings.Builder
		if err := run(context.Background(), args, &out, nil); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// bootDaemon starts the daemon with args and returns its address and a stop
// function that shuts it down cleanly.
func bootDaemon(t *testing.T, args []string) (addr string, stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	var out strings.Builder
	errCh := make(chan error, 1)
	go func() { errCh <- run(ctx, args, &out, ready) }()
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("run exited before ready: %v (output %q)", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return addr, func() {
		cancel()
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("clean shutdown returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("daemon did not shut down")
		}
	}
}

// freePorts reserves n distinct ephemeral ports and releases them — fleet
// daemons need the whole peer table before any of them binds.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	lns := make([]interface{ Close() error }, 0, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		lns = append(lns, ln)
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestFleetModeSmoke boots three daemons in -peers fleet mode, submits
// through one, reads the same bytes back through another, kills a peer, and
// shows the survivors still answering — the in-process chaos contract
// (internal/fleet) holding across real daemon processes' wiring.
func TestFleetModeSmoke(t *testing.T) {
	leakcheck.Check(t)
	addrs := freePorts(t, 3)
	names := []string{"p0", "p1", "p2"}
	var table []string
	for i, n := range names {
		table = append(table, n+"=http://"+addrs[i])
	}
	peers := strings.Join(table, ",")

	stops := make(map[string]func())
	for i, n := range names {
		_, stop := bootDaemon(t, []string{
			"-addr", addrs[i], "-peers", peers, "-self", n, "-batchwindow", "1ms",
		})
		stops[n] = stop
	}
	defer func() {
		for _, stop := range stops {
			if stop != nil {
				stop()
			}
		}
	}()

	body := `{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1},` +
		`{"name":"b","period_ms":20,"wcec":6,"acec":3,"bcec":2,"ceff":1}]}`
	resp, err := http.Post("http://"+addrs[0]+"/v1/schedules", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit via p0: %d %s", resp.StatusCode, first)
	}
	var sub struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(first, &sub); err != nil {
		t.Fatal(err)
	}
	// The same fingerprint reads back byte-identically through a different
	// front end: routing is invisible in response bytes.
	resp, err = http.Get("http://" + addrs[2] + "/v1/schedules/" + sub.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	viaOther, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(viaOther), sub.Fingerprint) {
		t.Fatalf("get via p2: %d %s", resp.StatusCode, viaOther)
	}

	// Kill one peer; the fleet keeps answering, byte-identically.
	stops["p1"]()
	stops["p1"] = nil
	resp, err = http.Post("http://"+addrs[0]+"/v1/schedules", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	after, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit after peer death: %d %s", resp.StatusCode, after)
	}
	if string(after) != string(first) {
		t.Fatalf("peer death changed the response bytes:\n%s\nvs\n%s", after, first)
	}
}

// TestWarmRestartServesFromStore is the daemon-level warm-restart smoke: a
// schedule submitted before a full stop/boot cycle on the same -store-dir is
// fetchable afterwards by fingerprint alone, byte-identically, served from
// the recovered disk log rather than a re-solve.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-batchwindow", "1ms", "-store-dir", dir}
	body := `{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1},` +
		`{"name":"b","period_ms":20,"wcec":6,"acec":3,"bcec":2,"ceff":1}]}`

	addr, stop := bootDaemon(t, args)
	resp, err := http.Post("http://"+addr+"/v1/schedules", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	first, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, first)
	}
	var sub struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(first, &sub); err != nil {
		t.Fatal(err)
	}
	stop()

	addr, stop = bootDaemon(t, args)
	defer stop()
	resp, err = http.Get("http://" + addr + "/v1/schedules/" + sub.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	second, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get after restart: %d %s", resp.StatusCode, second)
	}
	if string(second) != string(first) {
		t.Fatalf("restart changed the response bytes:\n%s\nvs\n%s", second, first)
	}
	resp, err = http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	statsBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		Memo struct {
			ScheduleMisses   int64 `json:"schedule_misses"`
			DiskHits         int64 `json:"disk_hits"`
			RecoveredEntries int64 `json:"recovered_entries"`
		} `json:"memo"`
	}
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	if st.Memo.ScheduleMisses != 0 {
		t.Errorf("warm restart re-solved %d schedules, want 0: %s", st.Memo.ScheduleMisses, statsBody)
	}
	if st.Memo.DiskHits == 0 || st.Memo.RecoveredEntries == 0 {
		t.Errorf("warm restart did not serve from the recovered log: %s", statsBody)
	}
}

// TestObservabilityEndpoints boots the daemon with the pprof sidecar and
// the trace recorder on: /metrics must serve valid exposition on both
// listeners, pprof must answer on its loopback port only, and a session's
// observation stream must land on disk as a readable trace — with a clean,
// leak-checked shutdown around all of it.
func TestObservabilityEndpoints(t *testing.T) {
	leakcheck.Check(t)
	pprofAddr := freePorts(t, 1)[0]
	traceDir := t.TempDir()
	addr, stop := bootDaemon(t, []string{
		"-addr", "127.0.0.1:0", "-batchwindow", "1ms",
		"-pprof", pprofAddr, "-trace-dir", traceDir,
	})

	body := `{"tasks":[{"name":"a","period_ms":10,"wcec":4,"acec":2,"bcec":1,"ceff":1},` +
		`{"name":"b","period_ms":20,"wcec":6,"acec":3,"bcec":2,"ceff":1}]}`
	resp, err := http.Post("http://"+addr+"/v1/schedules", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()

	// A short session stream for the recorder.
	resp, err = http.Post("http://"+addr+"/v1/sessions", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	createBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("session create: %d %s", resp.StatusCode, createBody)
	}
	var created struct {
		SessionID string `json:"session_id"`
		Instances int    `json:"instances"`
	}
	if err := json.Unmarshal(createBody, &created); err != nil {
		t.Fatal(err)
	}
	rows := make([][]float64, 3)
	for i := range rows {
		rows[i] = make([]float64, created.Instances)
		for j := range rows[i] {
			rows[i][j] = 2
		}
	}
	obsBody, _ := json.Marshal(struct {
		Hyperperiods [][]float64 `json:"hyperperiods"`
	}{rows})
	resp, err = http.Post("http://"+addr+"/v1/sessions/"+created.SessionID+"/observe",
		"application/json", strings.NewReader(string(obsBody)))
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d", resp.StatusCode)
	}

	// /metrics on the serving port: strictly valid exposition with the
	// request counter moving.
	for _, base := range []string{addr, pprofAddr} {
		resp, err = http.Get("http://" + base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		fams, perr := obs.ParseExposition(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || perr != nil {
			t.Fatalf("metrics on %s: status %d, parse: %v", base, resp.StatusCode, perr)
		}
		if v, ok := obs.SampleValue(fams, "schedd_requests_total", obs.L("endpoint", "submit")); !ok || v < 1 {
			t.Errorf("metrics on %s: submit counter = %v (present %v)", base, v, ok)
		}
	}

	// pprof answers on its own loopback listener.
	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: %d", resp.StatusCode)
	}

	stop()

	// The recording survived shutdown and replays as a valid stream.
	f, err := os.Open(traceDir + "/" + created.SessionID + ".trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := trace.ReadStream(f)
	if err != nil {
		t.Fatalf("recorded trace unreadable: %v", err)
	}
	if len(rec.Rows) != 3 || rec.Instances != created.Instances {
		t.Fatalf("recording has %d rows width %d, want 3 width %d", len(rec.Rows), rec.Instances, created.Instances)
	}
}

// TestPprofRejectsNonLoopback: the profiling sidecar refuses to bind a
// routable address.
func TestPprofRejectsNonLoopback(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-pprof", "0.0.0.0:0"}, &out, nil)
	if err == nil || !strings.Contains(err.Error(), "loopback") {
		t.Fatalf("non-loopback -pprof accepted: %v", err)
	}
}
