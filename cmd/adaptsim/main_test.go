package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallArgs keeps the closed loops short enough for a unit test while still
// crossing one mode switch and one drift transition.
func smallArgs(extra ...string) []string {
	args := []string{"-n", "3", "-horizon", "100", "-chunk", "10",
		"-switchevery", "40", "-driftover", "60", "-seed", "1"}
	return append(args, extra...)
}

// TestRunReportShape: the harness completes over every scenario, the report
// parses, the static arm is matched on stationary workloads and beaten on
// the nonstationary ones, and the oracle bounds the adaptive arm.
func TestRunReportShape(t *testing.T) {
	var out strings.Builder
	if err := run(smallArgs(), &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if len(rep.Scenarios) != 4 {
		t.Fatalf("%d scenario reports, want 4", len(rep.Scenarios))
	}
	for _, sr := range rep.Scenarios {
		if sr.StaticEnergy <= 0 || sr.AdaptiveEnergy <= 0 || sr.OracleEnergy <= 0 {
			t.Errorf("%s: non-positive energies: %+v", sr.Scenario, sr)
		}
		if sr.DeadlineMisses != 0 {
			t.Errorf("%s: %d deadline misses", sr.Scenario, sr.DeadlineMisses)
		}
		switch sr.Scenario {
		case "stationary":
			if sr.Resolves != 0 || sr.AdaptiveEnergy != sr.StaticEnergy {
				t.Errorf("stationary arm not neutral: %+v", sr)
			}
		case "modeswitch", "drift":
			if sr.Resolves == 0 {
				t.Errorf("%s: no re-solves", sr.Scenario)
			}
			if sr.AdaptiveEnergy >= sr.StaticEnergy {
				t.Errorf("%s: adaptive %g not below static %g", sr.Scenario, sr.AdaptiveEnergy, sr.StaticEnergy)
			}
			if sr.OracleEnergy > sr.AdaptiveEnergy {
				t.Errorf("%s: oracle %g above adaptive %g — not a lower bound here",
					sr.Scenario, sr.OracleEnergy, sr.AdaptiveEnergy)
			}
		}
	}
	if rep.Cache.ScheduleMisses == 0 {
		t.Error("no solves recorded in cache stats")
	}
}

// TestRunDeterministicAndCacheInvariant: the report is byte-identical across
// runs and across cache on/off (modulo the cache-stats section, which is
// operational state).
func TestRunDeterministicAndCacheInvariant(t *testing.T) {
	render := func(extra ...string) string {
		var out strings.Builder
		if err := run(smallArgs(extra...), &out); err != nil {
			t.Fatalf("run: %v", err)
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatal("report not deterministic across identical runs")
	}
	scenariosOnly := func(s string) string {
		var rep report
		if err := json.Unmarshal([]byte(s), &rep); err != nil {
			t.Fatal(err)
		}
		buf, err := json.Marshal(rep.Scenarios)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	if scenariosOnly(a) != scenariosOnly(render("-nocache")) {
		t.Error("cache state changed scenario results")
	}
}

// TestRunWritesArtefact: -o writes the same bytes as stdout.
func TestRunWritesArtefact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out strings.Builder
	if err := run(smallArgs("-scenarios", "stationary", "-o", path), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no stdout output")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != out.String() {
		t.Error("artefact differs from stdout")
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-scenarios", "nope"},
		{"-scenarios", ""},
		{"-horizon", "0"},
		{"positional"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
