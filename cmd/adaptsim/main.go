// Command adaptsim is the closed-loop benchmark harness of the feedback
// subsystem (internal/feedback, DESIGN.md §8): for each nonstationary
// workload scenario it executes the same seeded workload stream under three
// arms —
//
//	static    the ACS schedule solved once against the stated model
//	adaptive  the feedback controller: estimators + drift detection +
//	          warm-started re-solves, plan swapped at chunk boundaries
//	oracle    a clairvoyant controller that re-solves from the scenario's
//	          true regime mean the moment it changes (the reported lower
//	          bound: adaptation without detection or estimation lag)
//
// — and reports simulated energies, improvement percentages, re-solve
// counts and swap points as JSON (the BENCH_adapt.json artefact). Every arm
// sees byte-identical workloads; the whole report is a pure function of the
// flags.
//
// The harness also closes the capture/replay loop (DESIGN.md §13):
// -record writes each scenario's observed execution-cycle stream to a
// .trace file (the internal/trace stream format), and -replay runs the
// static and adaptive arms over such a recording instead of a generated
// scenario — offline feedback analysis against exactly the workload a
// previous run saw.
//
// Usage:
//
//	adaptsim
//	adaptsim -scenarios modeswitch,drift -horizon 480 -seed 7 -o BENCH_adapt.json
//	adaptsim -record traces/ -scenarios modeswitch -horizon 160
//	adaptsim -replay traces/modeswitch.trace -chunk 10
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/feedback"
	"repro/internal/grid"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	cliutil.Exit("adaptsim", run(os.Args[1:], os.Stdout))
}

// scenarioReport is one scenario's three-arm comparison.
type scenarioReport struct {
	Scenario       string  `json:"scenario"`
	Horizon        int     `json:"horizon_hyperperiods"`
	StaticEnergy   float64 `json:"static_energy"`
	AdaptiveEnergy float64 `json:"adaptive_energy"`
	OracleEnergy   float64 `json:"oracle_energy"`
	// AdaptivePct and OraclePct are energy improvements over the static
	// arm, in percent (positive = better than static).
	AdaptivePct     float64 `json:"adaptive_improvement_pct"`
	OraclePct       float64 `json:"oracle_improvement_pct"`
	Resolves        int64   `json:"resolves"`
	Drifts          int64   `json:"drifts"`
	OracleResolves  int     `json:"oracle_resolves"`
	SwapHyperperiod []int64 `json:"swap_hyperperiods"`
	DeadlineMisses  int     `json:"deadline_misses"`
}

// report is the whole run's JSON artefact.
type report struct {
	Tasks     int              `json:"tasks"`
	Ratio     float64          `json:"ratio"`
	Util      float64          `json:"util"`
	Seed      uint64           `json:"seed"`
	Chunk     int              `json:"chunk_hyperperiods"`
	Scenarios []scenarioReport `json:"scenarios"`
	Cache     grid.Stats       `json:"cache"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("adaptsim", flag.ContinueOnError)
	var (
		n         = fs.Int("n", 4, "tasks in the generated set")
		ratio     = fs.Float64("ratio", 0.1, "BCEC/WCEC ratio of the generated set")
		util      = fs.Float64("util", 0.7, "worst-case utilisation of the generated set")
		seed      = fs.Uint64("seed", 1, "master seed: task set, workload streams")
		scenarios = fs.String("scenarios", "stationary,modeswitch,drift,bursty", "comma-separated scenario kinds")
		horizon   = fs.Int("horizon", 320, "hyper-periods per scenario")
		chunk     = fs.Int("chunk", 10, "hyper-periods per execution chunk (plan swaps land on chunk boundaries)")
		swEvery   = fs.Int("switchevery", 80, "modeswitch regime length in hyper-periods")
		driftOver = fs.Int("driftover", 200, "drift transition length in hyper-periods")
		simWork   = fs.Int("simworkers", 0, "simulation workers (0 = GOMAXPROCS; results identical for any value)")
		workers   = fs.Int("workers", 0, "grid worker-pool width for solves (0 = GOMAXPROCS)")
		noCache   = fs.Bool("nocache", false, "disable the schedule/plan memo (identical results, more solves)")
		out       = fs.String("o", "", "also write the JSON report to this file")
		record    = fs.String("record", "", "record each scenario's observation stream to DIR/<scenario>.trace")
		replay    = fs.String("replay", "", "replay a recorded .trace file (static vs adaptive arms) instead of generating scenarios")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *horizon <= 0 || *chunk <= 0 {
		return fmt.Errorf("horizon and chunk must be positive")
	}
	if *replay != "" {
		return runReplay(*replay, *chunk, *simWork, *workers, !*noCache, *out, stdout)
	}
	kinds, err := parseKinds(*scenarios)
	if err != nil {
		return err
	}

	rng := stats.NewRNG(*seed)
	set, err := workload.RandomFeasible(rng, workload.RandomConfig{N: *n, Ratio: *ratio, Utilization: *util}, 50,
		func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil })
	if err != nil {
		return err
	}

	var memo *grid.Memo
	if !*noCache {
		memo = grid.NewMemo()
	}
	runner := grid.New(*workers, memo)
	rep := &report{Tasks: *n, Ratio: *ratio, Util: *util, Seed: *seed, Chunk: *chunk}
	ctx := context.Background()
	misses := 0

	for _, kind := range kinds {
		sc, err := workload.NewScenario(set, workload.ScenarioConfig{
			Kind: kind, Seed: *seed ^ stats.SeedFromString(kind.String()),
			SwitchEvery: *swEvery, DriftOver: *driftOver,
		})
		if err != nil {
			return err
		}
		ctrl, err := feedback.NewController(ctx, set, feedback.Options{Runner: runner})
		if err != nil {
			return err
		}
		simCfg := sim.Config{Policy: sim.Greedy, Workers: *simWork}
		taskOf := ctrl.TaskOf()
		rows, err := sc.Actuals(*horizon, taskOf)
		if err != nil {
			return err
		}
		if *record != "" {
			if err := recordStream(*record, kind.String(), set, rows); err != nil {
				return err
			}
		}

		// Static arm: the initial plan over the whole stream, chunked
		// exactly like the adaptive loop so the energies compare exactly.
		sr := scenarioReport{Scenario: kind.String(), Horizon: *horizon}
		staticPlan := ctrl.Plan()
		for lo := 0; lo < *horizon; lo += *chunk {
			r, err := staticPlan.RunActuals(simCfg, rows[lo:min(lo+*chunk, *horizon)])
			if err != nil {
				return err
			}
			sr.StaticEnergy += r.Energy
			sr.DeadlineMisses += r.DeadlineMisses
		}

		// Adaptive arm: the full closed loop.
		lr, err := feedback.RunClosedLoop(ctx, ctrl, sc, *horizon, *chunk, simCfg)
		if err != nil {
			return err
		}
		sr.AdaptiveEnergy = lr.Energy
		sr.Resolves = lr.Resolves
		sr.Drifts = lr.Drifts
		sr.SwapHyperperiod = lr.SwapHyperperiods
		sr.DeadlineMisses += lr.DeadlineMisses

		// Oracle arm: clairvoyant re-solve whenever the true regime mean
		// moved since the last solve (checked at chunk boundaries, the same
		// granularity the adaptive arm may swap at).
		oracleE, osolves, omisses, err := runOracle(ctx, runner, set, sc, rows, *horizon, *chunk, simCfg)
		if err != nil {
			return err
		}
		sr.OracleEnergy = oracleE
		sr.OracleResolves = osolves
		sr.DeadlineMisses += omisses

		if sr.StaticEnergy > 0 {
			sr.AdaptivePct = 100 * (sr.StaticEnergy - sr.AdaptiveEnergy) / sr.StaticEnergy
			sr.OraclePct = 100 * (sr.StaticEnergy - sr.OracleEnergy) / sr.StaticEnergy
		}
		misses += sr.DeadlineMisses
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	if memo != nil {
		rep.Cache = memo.Stats()
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := stdout.Write(buf); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
	}
	if misses > 0 {
		return fmt.Errorf("%d deadline misses observed — a schedule is invalid", misses)
	}
	return nil
}

// runOracle executes the clairvoyant arm: at every chunk boundary it knows
// the scenario's true regime mean and re-solves (through the shared memo)
// whenever it moved more than 2% of the support since the last solve.
func runOracle(ctx context.Context, runner *grid.Runner, set *task.Set, sc *workload.Scenario,
	rows [][]float64, horizon, chunk int, simCfg sim.Config) (energy float64, solves, misses int, err error) {
	fSolved := math.Inf(-1)
	var plan *sim.CompiledPlan
	for lo := 0; lo < horizon; lo += chunk {
		f := sc.MeanFrac(lo)
		if plan == nil || math.Abs(f-fSolved) > 0.02 {
			ts := append([]task.Task(nil), set.Tasks...)
			for i := range ts {
				ts[i].ACEC = ts[i].BCEC + f*(ts[i].WCEC-ts[i].BCEC)
			}
			oset, err := task.NewSet(ts)
			if err != nil {
				return 0, 0, 0, err
			}
			wcs, err := runner.BuildScheduleContext(ctx, oset, core.Config{Objective: core.WorstCase})
			if err != nil {
				return 0, 0, 0, err
			}
			acs, err := runner.BuildScheduleContext(ctx, oset, core.Config{Objective: core.AverageCase, WarmStart: wcs})
			if err != nil {
				return 0, 0, 0, err
			}
			if plan, err = runner.CompileSchedule(acs); err != nil {
				return 0, 0, 0, err
			}
			fSolved = f
			solves++
		}
		r, err := plan.RunActuals(simCfg, rows[lo:min(lo+chunk, horizon)])
		if err != nil {
			return 0, 0, 0, err
		}
		energy += r.Energy
		misses += r.DeadlineMisses
	}
	return energy, solves, misses, nil
}

// recordStream writes one scenario's observed rows as a .trace stream —
// the same format schedd's -trace-dir recorder emits, so both feed the
// same replayer.
func recordStream(dir, name string, set *task.Set, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	f, err := os.Create(dir + "/" + name + ".trace")
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteStream(f, &trace.Stream{Tasks: set.Tasks, Instances: width, Rows: rows}); err != nil {
		return err
	}
	return f.Close()
}

// replayReport is the -replay artefact: the two arms a recording supports
// (the oracle needs the scenario's true regime means, which a recording
// does not carry).
type replayReport struct {
	Source          string  `json:"source"`
	Tasks           int     `json:"tasks"`
	Horizon         int     `json:"horizon_hyperperiods"`
	Chunk           int     `json:"chunk_hyperperiods"`
	StaticEnergy    float64 `json:"static_energy"`
	AdaptiveEnergy  float64 `json:"adaptive_energy"`
	AdaptivePct     float64 `json:"adaptive_improvement_pct"`
	Resolves        int64   `json:"resolves"`
	Drifts          int64   `json:"drifts"`
	SwapHyperperiod []int64 `json:"swap_hyperperiods"`
	DeadlineMisses  int     `json:"deadline_misses"`
}

// runReplay re-runs a recorded observation stream through the static and
// adaptive arms. The whole report is a pure function of the recording and
// the chunk size — worker counts cannot change a byte of it.
func runReplay(path string, chunk, simWork, workers int, cache bool, out string, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	s, err := trace.ReadStream(f)
	f.Close()
	if err != nil {
		return err
	}
	set, err := task.NewSet(s.Tasks)
	if err != nil {
		return fmt.Errorf("replay: recorded task set: %w", err)
	}
	var memo *grid.Memo
	if cache {
		memo = grid.NewMemo()
	}
	runner := grid.New(workers, memo)
	ctx := context.Background()
	ctrl, err := feedback.NewController(ctx, set, feedback.Options{Runner: runner})
	if err != nil {
		return err
	}
	if got, want := len(ctrl.TaskOf()), s.Instances; got != want {
		return fmt.Errorf("replay: plan has %d instances per hyper-period, recording has %d", got, want)
	}
	simCfg := sim.Config{Policy: sim.Greedy, Workers: simWork}
	horizon := len(s.Rows)
	rep := &replayReport{Source: path, Tasks: set.N(), Horizon: horizon, Chunk: chunk}

	staticPlan := ctrl.Plan()
	for lo := 0; lo < horizon; lo += chunk {
		r, err := staticPlan.RunActuals(simCfg, s.Rows[lo:min(lo+chunk, horizon)])
		if err != nil {
			return err
		}
		rep.StaticEnergy += r.Energy
		rep.DeadlineMisses += r.DeadlineMisses
	}
	lr, err := feedback.RunReplay(ctx, ctrl, s.Rows, chunk, simCfg)
	if err != nil {
		return err
	}
	rep.AdaptiveEnergy = lr.Energy
	rep.Resolves = lr.Resolves
	rep.Drifts = lr.Drifts
	rep.SwapHyperperiod = lr.SwapHyperperiods
	rep.DeadlineMisses += lr.DeadlineMisses
	if rep.StaticEnergy > 0 {
		rep.AdaptivePct = 100 * (rep.StaticEnergy - rep.AdaptiveEnergy) / rep.StaticEnergy
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := stdout.Write(buf); err != nil {
		return err
	}
	if out != "" {
		if err := os.WriteFile(out, buf, 0o644); err != nil {
			return err
		}
	}
	if rep.DeadlineMisses > 0 {
		return fmt.Errorf("%d deadline misses observed — a schedule is invalid", rep.DeadlineMisses)
	}
	return nil
}

func parseKinds(s string) ([]workload.ScenarioKind, error) {
	var out []workload.ScenarioKind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, err := workload.ParseScenarioKind(name)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	return out, nil
}
