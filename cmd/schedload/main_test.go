package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/workload"
)

// TestRunInProcess: a small in-process load run completes with zero errors
// and zero determinism mismatches, and its report parses.
func TestRunInProcess(t *testing.T) {
	leakcheck.Check(t)
	var out strings.Builder
	err := run([]string{"-requests", "12", "-concurrency", "3", "-unique", "0.3",
		"-seed", "7", "-ntasks", "2", "-batchwindow", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	if rep.Requests != 12 || rep.Errors != 0 || rep.Mismatches != 0 {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.UniqueSets < 1 || rep.UniqueSets > 12 {
		t.Errorf("unique set count out of range: %d", rep.UniqueSets)
	}
	if rep.Throughput <= 0 || rep.LatencyMs.Max <= 0 {
		t.Errorf("missing measurements: %+v", rep)
	}
	if len(rep.Server) == 0 {
		t.Error("server stats not captured")
	}
	// Regression: the report surfaces the memo's eviction/byte accounting as
	// first-class fields, not just hit/miss rates buried in the raw blob.
	if rep.Cache == nil {
		t.Fatal("report has no cache section")
	}
	if rep.Cache.ScheduleMisses == 0 {
		t.Error("cache section recorded no solves")
	}
	if rep.Cache.BytesCap != 256<<20 {
		t.Errorf("cache section bytes cap %d, want default 256 MiB", rep.Cache.BytesCap)
	}
	if rep.Cache.BytesUsed <= 0 {
		t.Error("cache section shows no resident bytes after solves")
	}
	if rep.Cache.ScheduleHitRate <= 0 || rep.Cache.ScheduleHitRate >= 1 {
		t.Errorf("hit rate %g implausible for a repeat mix", rep.Cache.ScheduleHitRate)
	}
	for _, field := range []string{`"evictions"`, `"bytes_used"`, `"bytes_cap"`, `"schedule_hit_rate"`} {
		if !strings.Contains(out.String(), field) {
			t.Errorf("report body missing %s", field)
		}
	}
}

// TestBuildBodiesDeterministic: the generated request stream is a pure
// function of its seed.
func TestBuildBodiesDeterministic(t *testing.T) {
	gen := func() []string {
		bodies, n, err := buildBodies(20, 0.25, 42,
			workload.RandomConfig{N: 3, Ratio: 0.5, Utilization: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("want 5 unique bodies, got %d", n)
		}
		return bodies
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body %d differs across equal seeds", i)
		}
	}
	seen := map[string]bool{}
	for _, body := range a {
		if seen[body] {
			t.Fatal("duplicate unique bodies")
		}
		seen[body] = true
	}
}

// TestRunFlagErrors: invalid invocations fail fast.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-requests", "0"},
		{"-unique", "1.5"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}

// TestRunRestartReport is the report-schema regression for -restart: the run
// succeeds, the top-level report reflects the warm phase, the restart section
// carries the cold/warm comparison with (near-)total solve avoidance, and the
// tiered-store counters appear by name in the JSON body.
func TestRunRestartReport(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-restart", "-store-dir", dir, "-requests", "12",
		"-concurrency", "3", "-unique", "0.3", "-seed", "7", "-ntasks", "2",
		"-batchwindow", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Fatalf("restart run reported failures: %+v", rep)
	}
	rr := rep.Restart
	if rr == nil {
		t.Fatalf("report has no restart section:\n%s", out.String())
	}
	if rr.ColdScheduleMisses == 0 {
		t.Error("cold phase solved nothing — the comparison is vacuous")
	}
	if rr.SolveAvoidancePct < 90 {
		t.Errorf("solve avoidance %.1f%%, want >= 90", rr.SolveAvoidancePct)
	}
	if rr.WarmDiskHits == 0 || rr.RecoveredEntries == 0 {
		t.Errorf("warm phase shows no recovered-store activity: %+v", rr)
	}
	if rr.TornRecordsDropped != 0 {
		t.Errorf("clean shutdown dropped %d torn records", rr.TornRecordsDropped)
	}
	if rr.ColdDurationMs <= 0 || rr.WarmDurationMs <= 0 {
		t.Errorf("missing phase durations: %+v", rr)
	}
	// The headline cache section must be the WARM snapshot: by then every
	// schedule is served from some tier, never re-solved.
	if rep.Cache == nil || rep.Cache.ScheduleMisses != 0 {
		t.Errorf("headline cache section is not the warm phase: %+v", rep.Cache)
	}
	for _, field := range []string{`"restart"`, `"cold_schedule_misses"`,
		`"warm_schedule_misses"`, `"solve_avoidance_pct"`, `"mem_hits"`,
		`"disk_hits"`, `"recovered_entries"`, `"torn_records_dropped"`} {
		if !strings.Contains(out.String(), field) {
			t.Errorf("report body missing %s", field)
		}
	}
}

// TestRunRestartFlagErrors: -restart/-store-dir target the in-process server
// and must be rejected alongside -addr.
func TestRunRestartFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-restart", "-addr", "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("-restart with -addr accepted")
	}
	if err := run([]string{"-store-dir", t.TempDir(), "-addr", "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("-store-dir with -addr accepted")
	}
}

// TestRunWithFaultsAndRestart is the fault-injected smoke (ISSUE:
// robustness): a -restart run against a store taking torn writes and sync
// failures must still complete with zero request errors and zero determinism
// mismatches — disk faults cost durability (the avoidance gate is waived),
// never correctness. The report must carry the fault spec it ran under.
func TestRunWithFaultsAndRestart(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{"-restart", "-store-dir", dir, "-requests", "16",
		"-concurrency", "4", "-unique", "0.5", "-seed", "3", "-ntasks", "2",
		"-batchwindow", "1ms",
		"-faults", "fs.write=torn:0.5:0.3,fs.sync=err:0.2", "-faultseed", "7"}, &out)
	if err != nil {
		t.Fatalf("fault-injected restart run failed: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	if rep.Errors != 0 {
		t.Errorf("injected disk faults failed %d requests; degradation must be invisible", rep.Errors)
	}
	if rep.Mismatches != 0 {
		t.Errorf("injected disk faults changed response bytes: %d mismatches", rep.Mismatches)
	}
	if rep.Faults == "" {
		t.Error("report does not record the fault spec")
	}
	if rep.Restart == nil {
		t.Fatal("report has no restart section")
	}
}

// TestRunFaultsFlagErrors: -faults drives the in-process server and a bad
// spec fails fast.
func TestRunFaultsFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-faults", "fs.write=err:0.5", "-addr", "http://127.0.0.1:1"}, &out); err == nil {
		t.Error("-faults with -addr accepted")
	}
	if err := run([]string{"-faults", "fs.write=bogus"}, &out); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

// TestRunFleetInProcess: a -fleet run with a peer killed mid-stream finishes
// with zero errors and zero determinism mismatches — the replicas absorbed
// the dead peer's keys byte-identically — and the report carries the fleet
// section with the router's counters.
func TestRunFleetInProcess(t *testing.T) {
	leakcheck.Check(t)
	var out strings.Builder
	err := run([]string{"-fleet", "3", "-killpeer", "1", "-requests", "15",
		"-concurrency", "3", "-unique", "0.4", "-seed", "5", "-ntasks", "2",
		"-batchwindow", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	if rep.Errors != 0 || rep.Mismatches != 0 {
		t.Errorf("fleet run with a killed peer: %d errors, %d mismatches, want 0/0", rep.Errors, rep.Mismatches)
	}
	if rep.Fleet == nil {
		t.Fatal("report has no fleet section")
	}
	if rep.Fleet.Peers != 3 || rep.Fleet.Replicas != 2 || rep.Fleet.KilledPeer != 1 || rep.Fleet.Processes {
		t.Errorf("fleet section wrong: %+v", rep.Fleet)
	}
	if len(rep.Fleet.RouterStats) == 0 {
		t.Error("router stats not captured")
	}
	// The router's accounting must show the dead peer's keys failing over.
	var rs struct {
		Peers []struct {
			Failovers int64 `json:"failovers"`
			Errors    int64 `json:"errors"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(rep.Fleet.RouterStats, &rs); err != nil {
		t.Fatal(err)
	}
	var failovers, errors int64
	for _, p := range rs.Peers {
		failovers += p.Failovers
		errors += p.Errors
	}
	if failovers == 0 && errors == 0 {
		t.Error("a peer died mid-run but the router recorded no failovers or errors")
	}
}

// TestRunFleetFlagErrors: fleet flags compose only with each other.
func TestRunFleetFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-fleet", "1"},
		{"-fleet", "3", "-restart"},
		{"-fleet", "3", "-addr", "http://localhost:1"},
		{"-fleet", "3", "-store-dir", "/tmp/x"},
		{"-fleet", "2", "-killpeer", "2"},
		{"-fleet", "2", "-schedd", "/bin/true", "-killpeer", "0"},
		{"-killpeer", "1"},
		{"-schedd", "/bin/true"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
