package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestRunInProcess: a small in-process load run completes with zero errors
// and zero determinism mismatches, and its report parses.
func TestRunInProcess(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-requests", "12", "-concurrency", "3", "-unique", "0.3",
		"-seed", "7", "-ntasks", "2", "-batchwindow", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	var rep report
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	if rep.Requests != 12 || rep.Errors != 0 || rep.Mismatches != 0 {
		t.Errorf("implausible report: %+v", rep)
	}
	if rep.UniqueSets < 1 || rep.UniqueSets > 12 {
		t.Errorf("unique set count out of range: %d", rep.UniqueSets)
	}
	if rep.Throughput <= 0 || rep.LatencyMs.Max <= 0 {
		t.Errorf("missing measurements: %+v", rep)
	}
	if len(rep.Server) == 0 {
		t.Error("server stats not captured")
	}
	// Regression: the report surfaces the memo's eviction/byte accounting as
	// first-class fields, not just hit/miss rates buried in the raw blob.
	if rep.Cache == nil {
		t.Fatal("report has no cache section")
	}
	if rep.Cache.ScheduleMisses == 0 {
		t.Error("cache section recorded no solves")
	}
	if rep.Cache.BytesCap != 256<<20 {
		t.Errorf("cache section bytes cap %d, want default 256 MiB", rep.Cache.BytesCap)
	}
	if rep.Cache.BytesUsed <= 0 {
		t.Error("cache section shows no resident bytes after solves")
	}
	if rep.Cache.ScheduleHitRate <= 0 || rep.Cache.ScheduleHitRate >= 1 {
		t.Errorf("hit rate %g implausible for a repeat mix", rep.Cache.ScheduleHitRate)
	}
	for _, field := range []string{`"evictions"`, `"bytes_used"`, `"bytes_cap"`, `"schedule_hit_rate"`} {
		if !strings.Contains(out.String(), field) {
			t.Errorf("report body missing %s", field)
		}
	}
}

// TestBuildBodiesDeterministic: the generated request stream is a pure
// function of its seed.
func TestBuildBodiesDeterministic(t *testing.T) {
	gen := func() []string {
		bodies, n, err := buildBodies(20, 0.25, 42,
			workload.RandomConfig{N: 3, Ratio: 0.5, Utilization: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("want 5 unique bodies, got %d", n)
		}
		return bodies
	}
	a, b := gen(), gen()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("body %d differs across equal seeds", i)
		}
	}
	seen := map[string]bool{}
	for _, body := range a {
		if seen[body] {
			t.Fatal("duplicate unique bodies")
		}
		seen[body] = true
	}
}

// TestRunFlagErrors: invalid invocations fail fast.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-requests", "0"},
		{"-unique", "1.5"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
