// Command schedload is the deterministic load generator and throughput
// benchmark for the scheduling service (cmd/schedd, DESIGN.md §7).
//
// It generates a seeded stream of submit requests — a configurable mix of
// unique and repeated task sets — fires them at a server from N concurrent
// clients, and reports throughput, latency percentiles and the server's
// cache statistics as JSON. With no -addr it spins an in-process server, so
// one invocation doubles as a self-contained benchmark (the numbers pinned
// in BENCH_serve.json).
//
// Because the request stream is seeded and the serving path is
// byte-deterministic, schedload also verifies the contract as it measures:
// every repeated body must receive byte-identical response bytes, whatever
// concurrency, batching, or cache state did in between. A mismatch fails the
// run.
//
// With -restart the run becomes a warm-restart benchmark (the numbers pinned
// in BENCH_store.json): the stream is fired against an in-process server
// backed by a persistent store, the server is fully stopped and reopened on
// the same directory, and the identical stream is replayed. The report then
// carries a "restart" section comparing cold and warm solve counts — a
// correct store makes the warm phase avoid (nearly) every re-solve — and the
// determinism audit spans both phases, so restart-crossing byte drift fails
// the run.
//
// With -faults the in-process server's store runs over a fault-injected
// filesystem (internal/fault; the spec grammar is point=err:P, point=torn:F:P,
// point=slow:D:P — e.g. "fs.write=torn:0.5:0.3,fs.sync=err:0.2") and the
// server's own failpoints can be armed by the same string. The client retries
// shed 503s with seeded-jitter exponential backoff and the report counts
// sheds, retries, and degraded responses. Degraded bodies are excluded from
// the determinism audit (they sit outside the byte contract by design), so
// disk faults mid-stream must not change the audit's verdict. The
// solve-avoidance gate of -restart is skipped under -faults: injected write
// failures legitimately drop persists.
//
// With -fleet N the run targets an N-peer fleet (internal/fleet, DESIGN.md
// §11) instead of a single server: in-process peers behind an in-process
// router, or — with -schedd PATH — real schedd processes in -peers/-self
// fleet mode, entered through peer 0. -killpeer I hard-kills peer I after a
// third of the stream; the retry client and the surviving replicas must
// absorb the rest with zero failed requests, and the determinism audit spans
// the kill (the numbers pinned in BENCH_fleet.json). The report gains a
// "fleet" section with the router's per-peer forwarding/failover counters.
//
// Usage:
//
//	schedload -requests 200 -concurrency 8 -unique 0.25 -seed 1
//	schedload -addr http://localhost:8372 -requests 1000 -concurrency 32
//	schedload -restart -requests 200 -unique 0.25 -seed 1
//	schedload -restart -faults "fs.write=torn:0.5:0.3" -faultseed 7
//	schedload -fleet 3 -killpeer 1 -requests 200 -unique 0.25 -seed 1
//	schedload -fleet 3 -schedd ./schedd -killpeer 1 -requests 40
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/retry"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	cliutil.Exit("schedload", run(os.Args[1:], os.Stdout))
}

// report is the JSON summary a run prints.
type report struct {
	Requests    int     `json:"requests"`
	UniqueSets  int     `json:"unique_sets"`
	Concurrency int     `json:"concurrency"`
	Seed        uint64  `json:"seed"`
	DurationMs  float64 `json:"duration_ms"`
	Throughput  float64 `json:"throughput_rps"`
	LatencyMs   struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Errors     int `json:"errors"`
	Mismatches int `json:"determinism_mismatches"`
	// Robustness accounting (DESIGN.md §10), summed over all phases: Shed
	// counts 503 responses observed (each retried with backoff), Retries the
	// re-sent requests, Degraded the 200s served from the WCS fallback —
	// excluded from the determinism audit.
	Shed     int64           `json:"shed_503s"`
	Retries  int64           `json:"retries"`
	Degraded int64           `json:"degraded_responses"`
	Faults   string          `json:"faults,omitempty"`
	Cache    *cacheReport    `json:"cache,omitempty"`
	Restart  *restartReport  `json:"restart,omitempty"`
	Fleet    *fleetReport    `json:"fleet,omitempty"`
	Metrics  *metricsReport  `json:"metrics,omitempty"`
	Server   json.RawMessage `json:"server_stats,omitempty"`
}

// metricsStage summarises one server-side stage latency histogram
// (schedd_stage_seconds{stage=...}) from the end-of-run /metrics scrape.
// Quantiles are interpolated within histogram buckets, in milliseconds.
type metricsStage struct {
	Stage string  `json:"stage"`
	Count float64 `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// metricsReport is the parsed end-of-run /metrics scrape: where the
// report's latency_ms section measures the client's wall clock, this one
// breaks the server's side down by pipeline stage. The scrape is also a
// format gate — unparseable exposition fails the whole run.
type metricsReport struct {
	SubmitsTotal float64        `json:"submit_requests_total"`
	Stages       []metricsStage `json:"stages,omitempty"`
}

// fleetReport describes a -fleet run: the topology, which peer (if any) was
// killed mid-stream, and the router's per-peer forwarding/failover counters
// captured at the end of the run.
type fleetReport struct {
	Peers       int             `json:"peers"`
	Replicas    int             `json:"replicas"`
	Processes   bool            `json:"processes"`
	KilledPeer  int             `json:"killed_peer"` // -1 = none
	RouterStats json.RawMessage `json:"router_stats,omitempty"`
}

// restartReport compares the cold phase (empty store, every unique set
// solved) against the warm phase (same stream replayed after a full process
// restart on the same store directory). SolveAvoidancePct is the headline:
// the fraction of cold-phase solves the recovered store made unnecessary.
type restartReport struct {
	ColdScheduleMisses int64   `json:"cold_schedule_misses"`
	WarmScheduleMisses int64   `json:"warm_schedule_misses"`
	WarmMemHits        int64   `json:"warm_mem_hits"`
	WarmDiskHits       int64   `json:"warm_disk_hits"`
	RecoveredEntries   int64   `json:"recovered_entries"`
	TornRecordsDropped int64   `json:"torn_records_dropped"`
	SolveAvoidancePct  float64 `json:"solve_avoidance_pct"`
	ColdDurationMs     float64 `json:"cold_duration_ms"`
	WarmDurationMs     float64 `json:"warm_duration_ms"`
	ColdP50Ms          float64 `json:"cold_p50_ms"`
	WarmP50Ms          float64 `json:"warm_p50_ms"`
}

// cacheReport lifts the server memo's full accounting — hit/miss counters
// *and* the bounded store's eviction/byte-occupancy state — into first-class
// report fields, so a load run shows whether its cache cap actually bound.
// grid.Stats is embedded so new counters appear on the wire automatically.
type cacheReport struct {
	grid.Stats
	ScheduleHitRate float64 `json:"schedule_hit_rate"`
}

// newCacheReport derives the report section from the memo stats snapshot.
func newCacheReport(m grid.Stats) *cacheReport {
	c := &cacheReport{Stats: m}
	if total := m.ScheduleHits + m.ScheduleMisses; total > 0 {
		c.ScheduleHitRate = float64(m.ScheduleHits) / float64(total)
	}
	return c
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "server base URL (empty = spin an in-process server)")
		requests  = fs.Int("requests", 200, "total submit requests to fire")
		conc      = fs.Int("concurrency", 8, "concurrent client goroutines")
		unique    = fs.Float64("unique", 0.25, "fraction of requests with a unique task set (the rest repeat)")
		seed      = fs.Uint64("seed", 1, "master seed for task-set generation and the repeat mix")
		nTasks    = fs.Int("ntasks", 4, "tasks per generated set")
		ratio     = fs.Float64("ratio", 0.5, "BCEC/WCEC ratio of generated sets")
		util      = fs.Float64("util", 0.7, "worst-case utilisation of generated sets (per core with -cores)")
		cores     = fs.Int("cores", 0, "submit partitioned requests onto this many cores (0/1 = single-core; sets are generated at util×cores total utilisation)")
		workers   = fs.Int("workers", 0, "in-process server: grid worker-pool width")
		cacheMB   = fs.Int64("cachemb", 256, "in-process server: cache cap in MiB (<0 = unbounded)")
		batch     = fs.Int("batch", 16, "in-process server: micro-batch size")
		window    = fs.Duration("batchwindow", 2*time.Millisecond, "in-process server: batch window")
		storeDir  = fs.String("store-dir", "", "in-process server: persistent store directory (see schedd -store-dir)")
		restart   = fs.Bool("restart", false, "measure warm-restart solve avoidance: fire the stream cold, stop the in-process server, reopen the same store, replay the identical stream (in-process only; -store-dir defaults to a temp dir)")
		faults    = fs.String("faults", "", "fault-injection spec for the in-process server (comma-separated point=mode, e.g. \"fs.write=torn:0.5:0.3,fs.sync=err:0.2\")")
		faultSeed = fs.Uint64("faultseed", 1, "seed for the fault registry's deterministic fire decisions and the client's retry jitter")
		fleetN    = fs.Int("fleet", 0, "run an N-peer fleet (internal/fleet) instead of a single server: in-process peers behind an in-process router, or OS processes with -schedd")
		scheddBin = fs.String("schedd", "", "with -fleet: path to a schedd binary; each peer becomes a real -peers/-self fleet daemon process and the stream enters through peer 0")
		killPeer  = fs.Int("killpeer", -1, "with -fleet: kill this peer index (it stays dead) after a third of the stream — the surviving replicas must absorb the rest")
		replicas  = fs.Int("replicas", 2, "with -fleet: replication factor R")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}
	if *requests <= 0 || *conc <= 0 {
		return fmt.Errorf("requests and concurrency must be positive")
	}
	if *unique < 0 || *unique > 1 {
		return fmt.Errorf("unique fraction must lie in [0,1], got %g", *unique)
	}
	if *addr != "" && (*restart || *storeDir != "" || *faults != "") {
		return fmt.Errorf("-restart, -store-dir and -faults drive the in-process server; they cannot be combined with -addr")
	}
	if *fleetN > 0 {
		if *addr != "" || *restart || *storeDir != "" || *faults != "" {
			return fmt.Errorf("-fleet runs its own peers; it cannot be combined with -addr, -restart, -store-dir or -faults")
		}
		if *fleetN < 2 {
			return fmt.Errorf("-fleet needs at least 2 peers, got %d", *fleetN)
		}
		if *killPeer >= *fleetN {
			return fmt.Errorf("-killpeer %d is outside the %d-peer fleet", *killPeer, *fleetN)
		}
		if *scheddBin != "" && *killPeer == 0 {
			return fmt.Errorf("-killpeer 0 would kill the fleet entry point in -schedd mode")
		}
	} else if *scheddBin != "" || *killPeer >= 0 {
		return fmt.Errorf("-schedd and -killpeer require -fleet")
	}
	var reg *fault.Registry
	if *faults != "" {
		specs, err := fault.ParseSpecs(*faults)
		if err != nil {
			return err
		}
		reg = fault.NewRegistry(*faultSeed)
		reg.ArmSpecs(specs)
	}
	if *restart && *storeDir == "" {
		dir, err := os.MkdirTemp("", "schedload-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		*storeDir = dir
	}

	// launch boots the in-process server — persistent-backed when -store-dir
	// is set — and returns its base URL plus a full-stop closure. -restart
	// calls it twice on the same directory; that stop/relaunch pair IS the
	// process restart being measured.
	memoBytes := *cacheMB << 20
	if *cacheMB < 0 {
		memoBytes = -1
	}
	launch := func() (string, func() error, error) {
		opts := server.Options{
			Workers: *workers, MemoBytes: memoBytes,
			BatchSize: *batch, BatchWindow: *window,
			Faults: reg,
		}
		var disk *store.Disk
		if *storeDir != "" {
			sopts := store.Options{}
			if reg != nil {
				sopts.FS = fault.Inject(fault.OS(), reg)
			}
			d, err := store.Open(*storeDir, sopts)
			if err != nil {
				return "", nil, err
			}
			disk = d
			tiered := store.NewTiered(grid.NewMemStore(memoBytes), disk)
			opts.Store = tiered
			opts.Checkpoints = tiered
		}
		srv := server.New(opts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			if disk != nil {
				disk.Close()
			}
			return "", nil, err
		}
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go hs.Serve(ln)
		stop := func() error {
			hs.Shutdown(context.Background())
			srv.Close()
			if disk != nil {
				return disk.Close()
			}
			return nil
		}
		return "http://" + ln.Addr().String(), stop, nil
	}

	base := *addr
	var stop func() error
	var fh *fleetHarness
	if *fleetN > 0 {
		var err error
		fh, err = launchFleet(*fleetN, *replicas, *scheddBin, server.Options{
			Workers: *workers, MemoBytes: memoBytes,
			BatchSize: *batch, BatchWindow: *window,
		})
		if err != nil {
			return err
		}
		defer fh.stopAll()
		base = fh.base
	} else if base == "" {
		var err error
		base, stop, err = launch()
		if err != nil {
			return err
		}
		defer func() {
			if stop != nil {
				stop()
			}
		}()
	}
	base = strings.TrimSuffix(base, "/")

	bodies, uniqueCount, err := buildBodies(*requests, *unique, *seed, workload.RandomConfig{
		N: *nTasks, Ratio: *ratio, Utilization: *util, Cores: *cores,
	})
	if err != nil {
		return err
	}

	// assignment[i] is the body index request i submits: round-robin over
	// the unique bodies (every body appears, repeats are spread evenly) then
	// a seeded Fisher–Yates shuffle — the stream is a pure function of the
	// seed, independent of concurrency.
	mixRNG := stats.NewRNG(*seed ^ 0x5eed10ad)
	assignment := make([]int, *requests)
	for i := range assignment {
		assignment[i] = i % uniqueCount
	}
	for i := len(assignment) - 1; i > 0; i-- {
		j := int(mixRNG.Uniform(0, float64(i+1)))
		if j > i {
			j = i
		}
		assignment[i], assignment[j] = assignment[j], assignment[i]
	}

	client := &http.Client{Timeout: 60 * time.Second}
	rc := &retry.HTTPClient{Client: client, Policy: retry.Policy{MaxAttempts: 5, Base: 5 * time.Millisecond}}
	var cold phaseResult
	if fh != nil && *killPeer >= 0 {
		// A third of the stream lands on the healthy fleet, then the victim
		// dies hard and stays dead: the surviving replicas must absorb every
		// remaining request (the retry client rides out the blip).
		killAt := len(assignment) / 3
		if killAt < 1 {
			killAt = 1
		}
		pre := firePhase(rc, base, bodies, assignment[:killAt], *conc, *faultSeed)
		if err := fh.kill(*killPeer); err != nil {
			return err
		}
		post := firePhase(rc, base, bodies, assignment[killAt:], *conc, *faultSeed+1000)
		cold = mergePhases(pre, post)
	} else {
		cold = firePhase(rc, base, bodies, assignment, *conc, *faultSeed)
	}
	var coldStats *statsCapture
	if fh == nil {
		coldStats = fetchStats(client, base)
	}

	var warm *phaseResult
	var warmStats *statsCapture
	if *restart {
		if coldStats == nil || coldStats.parsed == nil {
			return fmt.Errorf("cold phase yielded no server stats; cannot measure restart")
		}
		if err := stop(); err != nil {
			return fmt.Errorf("stopping cold server: %w", err)
		}
		stop = nil
		var err error
		base, stop, err = launch()
		if err != nil {
			return fmt.Errorf("relaunching on %s: %w", *storeDir, err)
		}
		w := firePhase(rc, base, bodies, assignment, *conc, *faultSeed+1)
		warm = &w
		warmStats = fetchStats(client, base)
		if warmStats == nil || warmStats.parsed == nil {
			return fmt.Errorf("warm phase yielded no server stats")
		}
	}

	// Determinism audit — spanning BOTH phases: a body must receive identical
	// bytes whether it was served cold, from the warm cache, or across the
	// restart from the recovered store. Degraded responses are excluded:
	// whether a solve budget expired is a property of load, not of the
	// request body, so they sit outside the byte contract — and therefore
	// injected faults must not change the audit's verdict.
	first := make(map[int]string, uniqueCount)
	mismatches := 0
	phases := []phaseResult{cold}
	if warm != nil {
		phases = append(phases, *warm)
	}
	for _, ph := range phases {
		for i, r := range ph.responses {
			if r == "" || ph.degraded[i] {
				continue
			}
			if want, ok := first[assignment[i]]; !ok {
				first[assignment[i]] = r
			} else if r != want {
				mismatches++
			}
		}
	}

	// The headline numbers describe the measured phase: the warm replay when
	// -restart, the single pass otherwise.
	measured := cold
	snap := coldStats
	if warm != nil {
		measured = *warm
		snap = warmStats
	}
	errCount := cold.errCount
	if warm != nil {
		errCount += warm.errCount
	}
	rep := &report{
		Requests:    *requests,
		UniqueSets:  uniqueCount,
		Concurrency: *conc,
		Seed:        *seed,
		DurationMs:  float64(measured.elapsed.Nanoseconds()) / 1e6,
		Errors:      errCount,
		Mismatches:  mismatches,
		Faults:      *faults,
	}
	for _, ph := range phases {
		rep.Shed += ph.shed
		rep.Retries += ph.retries
		rep.Degraded += ph.nDegraded
	}
	rep.Throughput = float64(*requests-measured.errCount) / measured.elapsed.Seconds()
	rep.LatencyMs.P50 = measured.percentile(0.50)
	rep.LatencyMs.P90 = measured.percentile(0.90)
	rep.LatencyMs.P99 = measured.percentile(0.99)
	rep.LatencyMs.Max = measured.percentile(1)
	if snap != nil {
		rep.Server = snap.raw
		if snap.parsed != nil {
			rep.Cache = newCacheReport(snap.parsed.Memo)
		}
	}
	if warm != nil {
		cm, wm := coldStats.parsed.Memo, warmStats.parsed.Memo
		rr := &restartReport{
			ColdScheduleMisses: cm.ScheduleMisses,
			WarmScheduleMisses: wm.ScheduleMisses,
			WarmMemHits:        wm.MemHits,
			WarmDiskHits:       wm.DiskHits,
			RecoveredEntries:   wm.RecoveredEntries,
			TornRecordsDropped: wm.TornRecordsDropped,
			ColdDurationMs:     float64(cold.elapsed.Nanoseconds()) / 1e6,
			WarmDurationMs:     float64(warm.elapsed.Nanoseconds()) / 1e6,
			ColdP50Ms:          cold.percentile(0.50),
			WarmP50Ms:          warm.percentile(0.50),
		}
		if cm.ScheduleMisses > 0 {
			rr.SolveAvoidancePct = 100 * (1 - float64(wm.ScheduleMisses)/float64(cm.ScheduleMisses))
		}
		rep.Restart = rr
	}
	// End-of-run /metrics scrape (DESIGN.md §13). Single-server targets only
	// — the in-process fleet router has no registry of its own. The scrape
	// must parse as strict exposition format, and against the clean
	// in-process server the submit counter must equal exactly what this
	// client sent: the initial stream plus every retry (the server counts
	// shed requests too — both sides see the same wire).
	if fh == nil {
		mr, err := scrapeMetrics(client, base)
		if err != nil {
			return fmt.Errorf("scraping /metrics: %w", err)
		}
		rep.Metrics = mr
		if *addr == "" && warm == nil {
			want := float64(*requests) + float64(cold.retries)
			if mr.SubmitsTotal != want {
				return fmt.Errorf("metrics cross-check: server counted %g submit requests, client sent %g (%d requests + %d retries)",
					mr.SubmitsTotal, want, *requests, cold.retries)
			}
		}
	}
	if fh != nil {
		fr := &fleetReport{
			Peers: *fleetN, Replicas: *replicas,
			Processes: *scheddBin != "", KilledPeer: *killPeer,
		}
		// The front end's /v1/stats is the router's per-peer accounting in
		// fleet mode: forwards, hedges, failovers, takeovers, breaker states.
		if sc := fetchStats(client, base); sc != nil {
			fr.RouterStats = sc.raw
		}
		rep.Fleet = fr
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if mismatches > 0 {
		return fmt.Errorf("%d determinism mismatches: identical bodies received different bytes", mismatches)
	}
	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed", errCount, *requests)
	}
	// Under injected faults the avoidance gate is meaningless: write failures
	// legitimately drop persists, so the warm phase re-solves what the faults
	// tore. The determinism and error gates above still hold — that is the
	// robustness contract being smoked.
	if rep.Restart != nil && *faults == "" && rep.Restart.SolveAvoidancePct < 90 {
		return fmt.Errorf("warm restart avoided only %.1f%% of solves (want >= 90%%): the store did not serve recovered schedules",
			rep.Restart.SolveAvoidancePct)
	}
	return nil
}

// phaseResult captures one pass of the request stream over the wire.
type phaseResult struct {
	latencies []float64 // sorted, successful requests only, milliseconds
	responses []string  // indexed by request, "" on error
	degraded  []bool    // indexed by request: 200 served from the WCS fallback
	errCount  int
	shed      int64 // 503 responses observed (each retried until attempts run out)
	retries   int64 // requests re-sent after a retryable failure
	nDegraded int64
	elapsed   time.Duration
}

// percentile returns the p-quantile of the phase's sorted latencies.
func (ph *phaseResult) percentile(p float64) float64 {
	return percentile(ph.latencies, p)
}

// fireOne sends one request through the shared retry client (internal/retry:
// seeded-jitter exponential backoff, Retry-After honored, 503s and transport
// failures retried — the same client the fleet router paces its passes with).
// It returns the final body ("" on error), whether the response was degraded,
// and the wall latency of the whole exchange in milliseconds.
func fireOne(rc *retry.HTTPClient, url, body string, rng *stats.RNG, ph *phaseResult, mu *sync.Mutex) (string, bool, float64) {
	t0 := time.Now()
	res, err := rc.Post(context.Background(), url, "application/json", []byte(body), rng)
	lat := float64(time.Since(t0).Nanoseconds()) / 1e6
	if res != nil {
		mu.Lock()
		ph.shed += res.Sheds
		ph.retries += res.Retries
		mu.Unlock()
	}
	if err != nil || res == nil || res.Status != http.StatusOK {
		return "", false, 0
	}
	var flag struct {
		Degraded bool `json:"degraded"`
	}
	json.Unmarshal(res.Body, &flag)
	return string(res.Body), flag.Degraded, lat
}

// firePhase fires every request in assignment order from conc concurrent
// clients and collects latencies, response bytes, and robustness counters.
// jitterSeed seeds the per-worker backoff jitter streams.
func firePhase(rc *retry.HTTPClient, base string, bodies []string, assignment []int, conc int, jitterSeed uint64) phaseResult {
	n := len(assignment)
	latencies := make([]float64, n)
	ph := phaseResult{responses: make([]string, n), degraded: make([]bool, n)}
	var mu sync.Mutex
	jitterMaster := stats.NewRNG(jitterSeed ^ 0xbac0ff)
	rngs := make([]*stats.RNG, conc)
	for w := range rngs {
		rngs[w] = jitterMaster.Split()
	}

	start := time.Now()
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idxCh {
				body, deg, lat := fireOne(rc, base+"/v1/schedules",
					bodies[assignment[i]], rngs[w], &ph, &mu)
				if body == "" {
					mu.Lock()
					ph.errCount++
					mu.Unlock()
					continue
				}
				if deg {
					mu.Lock()
					ph.nDegraded++
					mu.Unlock()
				}
				latencies[i] = lat
				ph.responses[i] = body
				ph.degraded[i] = deg
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	ph.elapsed = time.Since(start)

	for i, l := range latencies {
		if ph.responses[i] != "" {
			ph.latencies = append(ph.latencies, l)
		}
	}
	sort.Float64s(ph.latencies)
	return ph
}

// mergePhases concatenates two segments of one logical stream (the pre- and
// post-kill halves of a -killpeer run) into a single phase: responses keep
// their stream order so the determinism audit spans the kill.
func mergePhases(a, b phaseResult) phaseResult {
	out := phaseResult{
		responses: append(append([]string{}, a.responses...), b.responses...),
		degraded:  append(append([]bool{}, a.degraded...), b.degraded...),
		errCount:  a.errCount + b.errCount,
		shed:      a.shed + b.shed,
		retries:   a.retries + b.retries,
		nDegraded: a.nDegraded + b.nDegraded,
		elapsed:   a.elapsed + b.elapsed,
	}
	out.latencies = append(append([]float64{}, a.latencies...), b.latencies...)
	sort.Float64s(out.latencies)
	return out
}

// fleetHarness is a running fleet under test: a base URL the stream enters
// through, a hard-kill switch for one peer, and full teardown.
type fleetHarness struct {
	base   string
	killFn func(int) error
	stopFn func()
}

func (f *fleetHarness) kill(i int) error { return f.killFn(i) }
func (f *fleetHarness) stopAll()         { f.stopFn() }

// launchFleet boots an n-peer fleet. With bin == "" the peers are in-process
// servers behind an in-process fleet router (the wiring pinned by
// TestFleetChaos); with bin set, each peer is a real schedd process in
// -peers/-self fleet mode and the stream enters through peer 0's front end —
// the multi-process smoke CI runs.
func launchFleet(n, replicas int, bin string, sopts server.Options) (*fleetHarness, error) {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("p%d", i)
	}
	if bin != "" {
		return launchFleetProcs(names, replicas, bin)
	}

	ring := fleet.NewRing(names, fleet.DefaultVnodes)
	// Per-peer timeout matches the serving layer's WriteTimeout: a long solve
	// is legitimate; a dead peer fails fast by refusing the connection.
	topo := fleet.NewTopology(nil, fleet.TopologyOptions{PeerTimeout: 2 * time.Minute})
	type peerProc struct {
		srv   *server.Server
		hs    *http.Server
		alive bool
	}
	peers := make([]*peerProc, 0, n)
	cleanup := func() {
		for _, p := range peers {
			if p.alive {
				p.hs.Close()
				p.srv.Close()
			}
		}
		topo.Close()
	}
	for _, name := range names {
		blobs := store.NewMemBlobs()
		po := sopts
		po.Checkpoints = fleet.NewReplicatedBlobs(fleet.ReplicatedBlobsOptions{
			Local: blobs, Self: name, Ring: ring, Topo: topo, Replicas: replicas,
		})
		po.InternalBlobs = blobs
		srv := server.New(po)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			cleanup()
			return nil, err
		}
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go hs.Serve(ln)
		topo.SetURL(name, "http://"+ln.Addr().String())
		peers = append(peers, &peerProc{srv: srv, hs: hs, alive: true})
	}
	router := fleet.NewRouter(fleet.Options{Ring: ring, Topology: topo, Replicas: replicas})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cleanup()
		return nil, err
	}
	rhs := &http.Server{Handler: router, ReadHeaderTimeout: 10 * time.Second,
		WriteTimeout: 2 * time.Minute, IdleTimeout: 2 * time.Minute}
	go rhs.Serve(rln)
	return &fleetHarness{
		base: "http://" + rln.Addr().String(),
		killFn: func(i int) error {
			if i < 0 || i >= len(peers) {
				return fmt.Errorf("no peer %d in a %d-peer fleet", i, len(peers))
			}
			p := peers[i]
			p.alive = false
			p.srv.Close()
			return p.hs.Close() // hard stop: in-flight connections die too
		},
		stopFn: func() {
			rhs.Shutdown(context.Background())
			cleanup()
		},
	}, nil
}

// launchFleetProcs runs each peer as a schedd OS process. The whole peer
// table is pre-assigned ephemeral ports, because every daemon needs it at
// boot; readiness is its front end answering /v1/healthz.
func launchFleetProcs(names []string, replicas int, bin string) (*fleetHarness, error) {
	addrs := make([]string, len(names))
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	table := make([]string, len(names))
	for i, name := range names {
		table[i] = name + "=http://" + addrs[i]
	}
	peersSpec := strings.Join(table, ",")

	procs := make([]*exec.Cmd, len(names))
	alive := make([]bool, len(names))
	stopAll := func() {
		for i, cmd := range procs {
			if cmd != nil && alive[i] {
				cmd.Process.Kill()
				cmd.Wait()
			}
		}
	}
	for i, name := range names {
		cmd := exec.Command(bin,
			"-addr", addrs[i], "-peers", peersSpec, "-self", name,
			"-replicas", fmt.Sprint(replicas))
		cmd.Stdout = io.Discard
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stopAll()
			return nil, fmt.Errorf("starting peer %s: %w", name, err)
		}
		procs[i], alive[i] = cmd, true
	}
	probe := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for i := range names {
		for {
			resp, err := probe.Get("http://" + addrs[i] + "/v1/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				stopAll()
				return nil, fmt.Errorf("peer %s never became ready on %s", names[i], addrs[i])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	probe.CloseIdleConnections()
	return &fleetHarness{
		base: "http://" + addrs[0],
		killFn: func(i int) error {
			if i < 0 || i >= len(procs) {
				return fmt.Errorf("no peer %d in a %d-peer fleet", i, len(procs))
			}
			alive[i] = false
			if err := procs[i].Process.Kill(); err != nil {
				return err
			}
			procs[i].Wait() // reap; a killed process "fails" by design
			return nil
		},
		stopFn: stopAll,
	}, nil
}

// scrapeMetrics fetches and strictly parses the server's /metrics, then
// lifts the stage latency histograms into quantile summaries. Any
// exposition-format violation is an error — the load run doubles as the
// format smoke for the metrics surface.
func scrapeMetrics(client *http.Client, base string) (*metricsReport, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics answered %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("invalid exposition format: %w", err)
	}
	mr := &metricsReport{}
	mr.SubmitsTotal, _ = obs.SampleValue(fams, "schedd_requests_total", obs.L("endpoint", "submit"))
	for _, stage := range []string{
		"admission_wait", "batch_assembly", "solve_wcs", "solve_acs",
		"solve_partition", "sim", "store_get", "store_put", "feedback_resolve",
	} {
		lab := obs.L("stage", stage)
		n, ok := obs.SampleValue(fams, "schedd_stage_seconds_count", lab)
		if !ok || n == 0 {
			continue // stage never ran in this workload
		}
		ms := metricsStage{Stage: stage, Count: n}
		if q, ok := obs.HistogramQuantile(fams, "schedd_stage_seconds", 0.50, lab); ok {
			ms.P50Ms = 1e3 * q
		}
		if q, ok := obs.HistogramQuantile(fams, "schedd_stage_seconds", 0.90, lab); ok {
			ms.P90Ms = 1e3 * q
		}
		if q, ok := obs.HistogramQuantile(fams, "schedd_stage_seconds", 0.99, lab); ok {
			ms.P99Ms = 1e3 * q
		}
		mr.Stages = append(mr.Stages, ms)
	}
	return mr, nil
}

// statsCapture is one /v1/stats snapshot: the raw bytes for the report plus
// the parsed form for the cache and restart sections.
type statsCapture struct {
	raw    json.RawMessage
	parsed *server.StatsResponse
}

// fetchStats snapshots the server's /v1/stats; nil if unreachable.
func fetchStats(client *http.Client, base string) *statsCapture {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	sc := &statsCapture{raw: json.RawMessage(b)}
	var st server.StatsResponse
	if json.Unmarshal(b, &st) == nil {
		sc.parsed = &st
	}
	return sc
}

// buildBodies generates the unique request bodies: max(1, requests·unique)
// distinct feasible task sets drawn from per-set RNG streams split off the
// master seed.
func buildBodies(requests int, unique float64, seed uint64, cfg workload.RandomConfig) ([]string, int, error) {
	count := int(float64(requests)*unique + 0.5)
	if count < 1 {
		count = 1
	}
	if count > requests {
		count = requests
	}
	master := stats.NewRNG(seed)
	bodies := make([]string, count)
	feasible := func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil }
	if cfg.Cores > 1 {
		// Partitioned streams must generate sets the server's FFD
		// admission will accept, not merely single-core-feasible ones.
		feasible = func(s *task.Set) bool {
			_, err := partition.Admit(s, partition.Config{Cores: cfg.Cores})
			return err == nil
		}
	}
	for i := range bodies {
		rng := master.Split()
		set, err := workload.RandomFeasible(rng, cfg, 100, feasible)
		if err != nil {
			return nil, 0, fmt.Errorf("generating set %d: %w", i, err)
		}
		body, err := json.Marshal(struct {
			Tasks []task.Task `json:"tasks"`
			Cores int         `json:"cores,omitempty"`
		}{set.Tasks, cfg.Cores})
		if err != nil {
			return nil, 0, err
		}
		bodies[i] = string(body)
	}
	return bodies, count, nil
}

// percentile returns the p-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
