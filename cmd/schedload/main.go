// Command schedload is the deterministic load generator and throughput
// benchmark for the scheduling service (cmd/schedd, DESIGN.md §7).
//
// It generates a seeded stream of submit requests — a configurable mix of
// unique and repeated task sets — fires them at a server from N concurrent
// clients, and reports throughput, latency percentiles and the server's
// cache statistics as JSON. With no -addr it spins an in-process server, so
// one invocation doubles as a self-contained benchmark (the numbers pinned
// in BENCH_serve.json).
//
// Because the request stream is seeded and the serving path is
// byte-deterministic, schedload also verifies the contract as it measures:
// every repeated body must receive byte-identical response bytes, whatever
// concurrency, batching, or cache state did in between. A mismatch fails the
// run.
//
// Usage:
//
//	schedload -requests 200 -concurrency 8 -unique 0.25 -seed 1
//	schedload -addr http://localhost:8372 -requests 1000 -concurrency 32
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	cliutil.Exit("schedload", run(os.Args[1:], os.Stdout))
}

// report is the JSON summary a run prints.
type report struct {
	Requests    int     `json:"requests"`
	UniqueSets  int     `json:"unique_sets"`
	Concurrency int     `json:"concurrency"`
	Seed        uint64  `json:"seed"`
	DurationMs  float64 `json:"duration_ms"`
	Throughput  float64 `json:"throughput_rps"`
	LatencyMs   struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Errors     int             `json:"errors"`
	Mismatches int             `json:"determinism_mismatches"`
	Cache      *cacheReport    `json:"cache,omitempty"`
	Server     json.RawMessage `json:"server_stats,omitempty"`
}

// cacheReport lifts the server memo's full accounting — hit/miss counters
// *and* the bounded store's eviction/byte-occupancy state — into first-class
// report fields, so a load run shows whether its cache cap actually bound.
// grid.Stats is embedded so new counters appear on the wire automatically.
type cacheReport struct {
	grid.Stats
	ScheduleHitRate float64 `json:"schedule_hit_rate"`
}

// newCacheReport derives the report section from the memo stats snapshot.
func newCacheReport(m grid.Stats) *cacheReport {
	c := &cacheReport{Stats: m}
	if total := m.ScheduleHits + m.ScheduleMisses; total > 0 {
		c.ScheduleHitRate = float64(m.ScheduleHits) / float64(total)
	}
	return c
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "server base URL (empty = spin an in-process server)")
		requests = fs.Int("requests", 200, "total submit requests to fire")
		conc     = fs.Int("concurrency", 8, "concurrent client goroutines")
		unique   = fs.Float64("unique", 0.25, "fraction of requests with a unique task set (the rest repeat)")
		seed     = fs.Uint64("seed", 1, "master seed for task-set generation and the repeat mix")
		nTasks   = fs.Int("ntasks", 4, "tasks per generated set")
		ratio    = fs.Float64("ratio", 0.5, "BCEC/WCEC ratio of generated sets")
		util     = fs.Float64("util", 0.7, "worst-case utilisation of generated sets")
		workers  = fs.Int("workers", 0, "in-process server: grid worker-pool width")
		cacheMB  = fs.Int64("cachemb", 256, "in-process server: cache cap in MiB (<0 = unbounded)")
		batch    = fs.Int("batch", 16, "in-process server: micro-batch size")
		window   = fs.Duration("batchwindow", 2*time.Millisecond, "in-process server: batch window")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}
	if *requests <= 0 || *conc <= 0 {
		return fmt.Errorf("requests and concurrency must be positive")
	}
	if *unique < 0 || *unique > 1 {
		return fmt.Errorf("unique fraction must lie in [0,1], got %g", *unique)
	}

	base := *addr
	if base == "" {
		memoBytes := *cacheMB << 20
		if *cacheMB < 0 {
			memoBytes = -1
		}
		srv := server.New(server.Options{
			Workers: *workers, MemoBytes: memoBytes,
			BatchSize: *batch, BatchWindow: *window,
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Shutdown(context.Background())
		base = "http://" + ln.Addr().String()
	}
	base = strings.TrimSuffix(base, "/")

	bodies, uniqueCount, err := buildBodies(*requests, *unique, *seed, workload.RandomConfig{
		N: *nTasks, Ratio: *ratio, Utilization: *util,
	})
	if err != nil {
		return err
	}

	// assignment[i] is the body index request i submits: round-robin over
	// the unique bodies (every body appears, repeats are spread evenly) then
	// a seeded Fisher–Yates shuffle — the stream is a pure function of the
	// seed, independent of concurrency.
	mixRNG := stats.NewRNG(*seed ^ 0x5eed10ad)
	assignment := make([]int, *requests)
	for i := range assignment {
		assignment[i] = i % uniqueCount
	}
	for i := len(assignment) - 1; i > 0; i-- {
		j := int(mixRNG.Uniform(0, float64(i+1)))
		if j > i {
			j = i
		}
		assignment[i], assignment[j] = assignment[j], assignment[i]
	}

	client := &http.Client{Timeout: 60 * time.Second}
	latencies := make([]float64, *requests)
	responses := make([]string, *requests)
	errCount := 0
	var errMu sync.Mutex

	start := time.Now()
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/schedules", "application/json",
					strings.NewReader(bodies[assignment[i]]))
				lat := time.Since(t0)
				if err != nil {
					errMu.Lock()
					errCount++
					errMu.Unlock()
					continue
				}
				b, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					errMu.Lock()
					errCount++
					errMu.Unlock()
					continue
				}
				latencies[i] = float64(lat.Nanoseconds()) / 1e6
				responses[i] = string(b)
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	elapsed := time.Since(start)

	// Determinism audit: every request that shared a body must have received
	// identical bytes.
	first := make(map[int]string, uniqueCount)
	mismatches := 0
	for i, r := range responses {
		if r == "" {
			continue
		}
		if want, ok := first[assignment[i]]; !ok {
			first[assignment[i]] = r
		} else if r != want {
			mismatches++
		}
	}

	rep := &report{
		Requests:    *requests,
		UniqueSets:  uniqueCount,
		Concurrency: *conc,
		Seed:        *seed,
		DurationMs:  float64(elapsed.Nanoseconds()) / 1e6,
		Errors:      errCount,
		Mismatches:  mismatches,
	}
	rep.Throughput = float64(*requests-errCount) / elapsed.Seconds()
	ok := make([]float64, 0, len(latencies))
	for i, l := range latencies {
		if responses[i] != "" {
			ok = append(ok, l)
		}
	}
	sort.Float64s(ok)
	if len(ok) > 0 {
		rep.LatencyMs.P50 = percentile(ok, 0.50)
		rep.LatencyMs.P90 = percentile(ok, 0.90)
		rep.LatencyMs.P99 = percentile(ok, 0.99)
		rep.LatencyMs.Max = ok[len(ok)-1]
	}
	if resp, err := client.Get(base + "/v1/stats"); err == nil {
		if b, rerr := io.ReadAll(resp.Body); rerr == nil && resp.StatusCode == http.StatusOK {
			rep.Server = json.RawMessage(b)
			var st server.StatsResponse
			if json.Unmarshal(b, &st) == nil {
				rep.Cache = newCacheReport(st.Memo)
			}
		}
		resp.Body.Close()
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if mismatches > 0 {
		return fmt.Errorf("%d determinism mismatches: identical bodies received different bytes", mismatches)
	}
	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed", errCount, *requests)
	}
	return nil
}

// buildBodies generates the unique request bodies: max(1, requests·unique)
// distinct feasible task sets drawn from per-set RNG streams split off the
// master seed.
func buildBodies(requests int, unique float64, seed uint64, cfg workload.RandomConfig) ([]string, int, error) {
	count := int(float64(requests)*unique + 0.5)
	if count < 1 {
		count = 1
	}
	if count > requests {
		count = requests
	}
	master := stats.NewRNG(seed)
	bodies := make([]string, count)
	feasible := func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil }
	for i := range bodies {
		rng := master.Split()
		set, err := workload.RandomFeasible(rng, cfg, 100, feasible)
		if err != nil {
			return nil, 0, fmt.Errorf("generating set %d: %w", i, err)
		}
		body, err := json.Marshal(struct {
			Tasks []task.Task `json:"tasks"`
		}{set.Tasks})
		if err != nil {
			return nil, 0, err
		}
		bodies[i] = string(body)
	}
	return bodies, count, nil
}

// percentile returns the p-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
