// Command schedload is the deterministic load generator and throughput
// benchmark for the scheduling service (cmd/schedd, DESIGN.md §7).
//
// It generates a seeded stream of submit requests — a configurable mix of
// unique and repeated task sets — fires them at a server from N concurrent
// clients, and reports throughput, latency percentiles and the server's
// cache statistics as JSON. With no -addr it spins an in-process server, so
// one invocation doubles as a self-contained benchmark (the numbers pinned
// in BENCH_serve.json).
//
// Because the request stream is seeded and the serving path is
// byte-deterministic, schedload also verifies the contract as it measures:
// every repeated body must receive byte-identical response bytes, whatever
// concurrency, batching, or cache state did in between. A mismatch fails the
// run.
//
// With -restart the run becomes a warm-restart benchmark (the numbers pinned
// in BENCH_store.json): the stream is fired against an in-process server
// backed by a persistent store, the server is fully stopped and reopened on
// the same directory, and the identical stream is replayed. The report then
// carries a "restart" section comparing cold and warm solve counts — a
// correct store makes the warm phase avoid (nearly) every re-solve — and the
// determinism audit spans both phases, so restart-crossing byte drift fails
// the run.
//
// With -faults the in-process server's store runs over a fault-injected
// filesystem (internal/fault; the spec grammar is point=err:P, point=torn:F:P,
// point=slow:D:P — e.g. "fs.write=torn:0.5:0.3,fs.sync=err:0.2") and the
// server's own failpoints can be armed by the same string. The client retries
// shed 503s with seeded-jitter exponential backoff and the report counts
// sheds, retries, and degraded responses. Degraded bodies are excluded from
// the determinism audit (they sit outside the byte contract by design), so
// disk faults mid-stream must not change the audit's verdict. The
// solve-avoidance gate of -restart is skipped under -faults: injected write
// failures legitimately drop persists.
//
// Usage:
//
//	schedload -requests 200 -concurrency 8 -unique 0.25 -seed 1
//	schedload -addr http://localhost:8372 -requests 1000 -concurrency 32
//	schedload -restart -requests 200 -unique 0.25 -seed 1
//	schedload -restart -faults "fs.write=torn:0.5:0.3" -faultseed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/grid"
	"repro/internal/server"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	cliutil.Exit("schedload", run(os.Args[1:], os.Stdout))
}

// report is the JSON summary a run prints.
type report struct {
	Requests    int     `json:"requests"`
	UniqueSets  int     `json:"unique_sets"`
	Concurrency int     `json:"concurrency"`
	Seed        uint64  `json:"seed"`
	DurationMs  float64 `json:"duration_ms"`
	Throughput  float64 `json:"throughput_rps"`
	LatencyMs   struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	Errors     int `json:"errors"`
	Mismatches int `json:"determinism_mismatches"`
	// Robustness accounting (DESIGN.md §10), summed over all phases: Shed
	// counts 503 responses observed (each retried with backoff), Retries the
	// re-sent requests, Degraded the 200s served from the WCS fallback —
	// excluded from the determinism audit.
	Shed     int64           `json:"shed_503s"`
	Retries  int64           `json:"retries"`
	Degraded int64           `json:"degraded_responses"`
	Faults   string          `json:"faults,omitempty"`
	Cache    *cacheReport    `json:"cache,omitempty"`
	Restart  *restartReport  `json:"restart,omitempty"`
	Server   json.RawMessage `json:"server_stats,omitempty"`
}

// restartReport compares the cold phase (empty store, every unique set
// solved) against the warm phase (same stream replayed after a full process
// restart on the same store directory). SolveAvoidancePct is the headline:
// the fraction of cold-phase solves the recovered store made unnecessary.
type restartReport struct {
	ColdScheduleMisses int64   `json:"cold_schedule_misses"`
	WarmScheduleMisses int64   `json:"warm_schedule_misses"`
	WarmMemHits        int64   `json:"warm_mem_hits"`
	WarmDiskHits       int64   `json:"warm_disk_hits"`
	RecoveredEntries   int64   `json:"recovered_entries"`
	TornRecordsDropped int64   `json:"torn_records_dropped"`
	SolveAvoidancePct  float64 `json:"solve_avoidance_pct"`
	ColdDurationMs     float64 `json:"cold_duration_ms"`
	WarmDurationMs     float64 `json:"warm_duration_ms"`
	ColdP50Ms          float64 `json:"cold_p50_ms"`
	WarmP50Ms          float64 `json:"warm_p50_ms"`
}

// cacheReport lifts the server memo's full accounting — hit/miss counters
// *and* the bounded store's eviction/byte-occupancy state — into first-class
// report fields, so a load run shows whether its cache cap actually bound.
// grid.Stats is embedded so new counters appear on the wire automatically.
type cacheReport struct {
	grid.Stats
	ScheduleHitRate float64 `json:"schedule_hit_rate"`
}

// newCacheReport derives the report section from the memo stats snapshot.
func newCacheReport(m grid.Stats) *cacheReport {
	c := &cacheReport{Stats: m}
	if total := m.ScheduleHits + m.ScheduleMisses; total > 0 {
		c.ScheduleHitRate = float64(m.ScheduleHits) / float64(total)
	}
	return c
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("schedload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "server base URL (empty = spin an in-process server)")
		requests  = fs.Int("requests", 200, "total submit requests to fire")
		conc      = fs.Int("concurrency", 8, "concurrent client goroutines")
		unique    = fs.Float64("unique", 0.25, "fraction of requests with a unique task set (the rest repeat)")
		seed      = fs.Uint64("seed", 1, "master seed for task-set generation and the repeat mix")
		nTasks    = fs.Int("ntasks", 4, "tasks per generated set")
		ratio     = fs.Float64("ratio", 0.5, "BCEC/WCEC ratio of generated sets")
		util      = fs.Float64("util", 0.7, "worst-case utilisation of generated sets")
		workers   = fs.Int("workers", 0, "in-process server: grid worker-pool width")
		cacheMB   = fs.Int64("cachemb", 256, "in-process server: cache cap in MiB (<0 = unbounded)")
		batch     = fs.Int("batch", 16, "in-process server: micro-batch size")
		window    = fs.Duration("batchwindow", 2*time.Millisecond, "in-process server: batch window")
		storeDir  = fs.String("store-dir", "", "in-process server: persistent store directory (see schedd -store-dir)")
		restart   = fs.Bool("restart", false, "measure warm-restart solve avoidance: fire the stream cold, stop the in-process server, reopen the same store, replay the identical stream (in-process only; -store-dir defaults to a temp dir)")
		faults    = fs.String("faults", "", "fault-injection spec for the in-process server (comma-separated point=mode, e.g. \"fs.write=torn:0.5:0.3,fs.sync=err:0.2\")")
		faultSeed = fs.Uint64("faultseed", 1, "seed for the fault registry's deterministic fire decisions and the client's retry jitter")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}
	if *requests <= 0 || *conc <= 0 {
		return fmt.Errorf("requests and concurrency must be positive")
	}
	if *unique < 0 || *unique > 1 {
		return fmt.Errorf("unique fraction must lie in [0,1], got %g", *unique)
	}
	if *addr != "" && (*restart || *storeDir != "" || *faults != "") {
		return fmt.Errorf("-restart, -store-dir and -faults drive the in-process server; they cannot be combined with -addr")
	}
	var reg *fault.Registry
	if *faults != "" {
		specs, err := fault.ParseSpecs(*faults)
		if err != nil {
			return err
		}
		reg = fault.NewRegistry(*faultSeed)
		reg.ArmSpecs(specs)
	}
	if *restart && *storeDir == "" {
		dir, err := os.MkdirTemp("", "schedload-store-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		*storeDir = dir
	}

	// launch boots the in-process server — persistent-backed when -store-dir
	// is set — and returns its base URL plus a full-stop closure. -restart
	// calls it twice on the same directory; that stop/relaunch pair IS the
	// process restart being measured.
	memoBytes := *cacheMB << 20
	if *cacheMB < 0 {
		memoBytes = -1
	}
	launch := func() (string, func() error, error) {
		opts := server.Options{
			Workers: *workers, MemoBytes: memoBytes,
			BatchSize: *batch, BatchWindow: *window,
			Faults: reg,
		}
		var disk *store.Disk
		if *storeDir != "" {
			sopts := store.Options{}
			if reg != nil {
				sopts.FS = fault.Inject(fault.OS(), reg)
			}
			d, err := store.Open(*storeDir, sopts)
			if err != nil {
				return "", nil, err
			}
			disk = d
			tiered := store.NewTiered(grid.NewMemStore(memoBytes), disk)
			opts.Store = tiered
			opts.Checkpoints = tiered
		}
		srv := server.New(opts)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			if disk != nil {
				disk.Close()
			}
			return "", nil, err
		}
		hs := &http.Server{
			Handler:           srv.Handler(),
			ReadHeaderTimeout: 10 * time.Second,
			WriteTimeout:      2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go hs.Serve(ln)
		stop := func() error {
			hs.Shutdown(context.Background())
			srv.Close()
			if disk != nil {
				return disk.Close()
			}
			return nil
		}
		return "http://" + ln.Addr().String(), stop, nil
	}

	base := *addr
	var stop func() error
	if base == "" {
		var err error
		base, stop, err = launch()
		if err != nil {
			return err
		}
		defer func() {
			if stop != nil {
				stop()
			}
		}()
	}
	base = strings.TrimSuffix(base, "/")

	bodies, uniqueCount, err := buildBodies(*requests, *unique, *seed, workload.RandomConfig{
		N: *nTasks, Ratio: *ratio, Utilization: *util,
	})
	if err != nil {
		return err
	}

	// assignment[i] is the body index request i submits: round-robin over
	// the unique bodies (every body appears, repeats are spread evenly) then
	// a seeded Fisher–Yates shuffle — the stream is a pure function of the
	// seed, independent of concurrency.
	mixRNG := stats.NewRNG(*seed ^ 0x5eed10ad)
	assignment := make([]int, *requests)
	for i := range assignment {
		assignment[i] = i % uniqueCount
	}
	for i := len(assignment) - 1; i > 0; i-- {
		j := int(mixRNG.Uniform(0, float64(i+1)))
		if j > i {
			j = i
		}
		assignment[i], assignment[j] = assignment[j], assignment[i]
	}

	client := &http.Client{Timeout: 60 * time.Second}
	cold := firePhase(client, base, bodies, assignment, *conc, *faultSeed)
	coldStats := fetchStats(client, base)

	var warm *phaseResult
	var warmStats *statsCapture
	if *restart {
		if coldStats == nil || coldStats.parsed == nil {
			return fmt.Errorf("cold phase yielded no server stats; cannot measure restart")
		}
		if err := stop(); err != nil {
			return fmt.Errorf("stopping cold server: %w", err)
		}
		stop = nil
		var err error
		base, stop, err = launch()
		if err != nil {
			return fmt.Errorf("relaunching on %s: %w", *storeDir, err)
		}
		w := firePhase(client, base, bodies, assignment, *conc, *faultSeed+1)
		warm = &w
		warmStats = fetchStats(client, base)
		if warmStats == nil || warmStats.parsed == nil {
			return fmt.Errorf("warm phase yielded no server stats")
		}
	}

	// Determinism audit — spanning BOTH phases: a body must receive identical
	// bytes whether it was served cold, from the warm cache, or across the
	// restart from the recovered store. Degraded responses are excluded:
	// whether a solve budget expired is a property of load, not of the
	// request body, so they sit outside the byte contract — and therefore
	// injected faults must not change the audit's verdict.
	first := make(map[int]string, uniqueCount)
	mismatches := 0
	phases := []phaseResult{cold}
	if warm != nil {
		phases = append(phases, *warm)
	}
	for _, ph := range phases {
		for i, r := range ph.responses {
			if r == "" || ph.degraded[i] {
				continue
			}
			if want, ok := first[assignment[i]]; !ok {
				first[assignment[i]] = r
			} else if r != want {
				mismatches++
			}
		}
	}

	// The headline numbers describe the measured phase: the warm replay when
	// -restart, the single pass otherwise.
	measured := cold
	snap := coldStats
	if warm != nil {
		measured = *warm
		snap = warmStats
	}
	errCount := cold.errCount
	if warm != nil {
		errCount += warm.errCount
	}
	rep := &report{
		Requests:    *requests,
		UniqueSets:  uniqueCount,
		Concurrency: *conc,
		Seed:        *seed,
		DurationMs:  float64(measured.elapsed.Nanoseconds()) / 1e6,
		Errors:      errCount,
		Mismatches:  mismatches,
		Faults:      *faults,
	}
	for _, ph := range phases {
		rep.Shed += ph.shed
		rep.Retries += ph.retries
		rep.Degraded += ph.nDegraded
	}
	rep.Throughput = float64(*requests-measured.errCount) / measured.elapsed.Seconds()
	rep.LatencyMs.P50 = measured.percentile(0.50)
	rep.LatencyMs.P90 = measured.percentile(0.90)
	rep.LatencyMs.P99 = measured.percentile(0.99)
	rep.LatencyMs.Max = measured.percentile(1)
	if snap != nil {
		rep.Server = snap.raw
		if snap.parsed != nil {
			rep.Cache = newCacheReport(snap.parsed.Memo)
		}
	}
	if warm != nil {
		cm, wm := coldStats.parsed.Memo, warmStats.parsed.Memo
		rr := &restartReport{
			ColdScheduleMisses: cm.ScheduleMisses,
			WarmScheduleMisses: wm.ScheduleMisses,
			WarmMemHits:        wm.MemHits,
			WarmDiskHits:       wm.DiskHits,
			RecoveredEntries:   wm.RecoveredEntries,
			TornRecordsDropped: wm.TornRecordsDropped,
			ColdDurationMs:     float64(cold.elapsed.Nanoseconds()) / 1e6,
			WarmDurationMs:     float64(warm.elapsed.Nanoseconds()) / 1e6,
			ColdP50Ms:          cold.percentile(0.50),
			WarmP50Ms:          warm.percentile(0.50),
		}
		if cm.ScheduleMisses > 0 {
			rr.SolveAvoidancePct = 100 * (1 - float64(wm.ScheduleMisses)/float64(cm.ScheduleMisses))
		}
		rep.Restart = rr
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if mismatches > 0 {
		return fmt.Errorf("%d determinism mismatches: identical bodies received different bytes", mismatches)
	}
	if errCount > 0 {
		return fmt.Errorf("%d of %d requests failed", errCount, *requests)
	}
	// Under injected faults the avoidance gate is meaningless: write failures
	// legitimately drop persists, so the warm phase re-solves what the faults
	// tore. The determinism and error gates above still hold — that is the
	// robustness contract being smoked.
	if rep.Restart != nil && *faults == "" && rep.Restart.SolveAvoidancePct < 90 {
		return fmt.Errorf("warm restart avoided only %.1f%% of solves (want >= 90%%): the store did not serve recovered schedules",
			rep.Restart.SolveAvoidancePct)
	}
	return nil
}

// phaseResult captures one pass of the request stream over the wire.
type phaseResult struct {
	latencies []float64 // sorted, successful requests only, milliseconds
	responses []string  // indexed by request, "" on error
	degraded  []bool    // indexed by request: 200 served from the WCS fallback
	errCount  int
	shed      int64 // 503 responses observed (each retried until attempts run out)
	retries   int64 // requests re-sent after a retryable failure
	nDegraded int64
	elapsed   time.Duration
}

// percentile returns the p-quantile of the phase's sorted latencies.
func (ph *phaseResult) percentile(p float64) float64 {
	return percentile(ph.latencies, p)
}

// retry policy for shed requests: a 503 is the server's explicit "come back
// shortly" (Retry-After is always attached), so the client backs off —
// exponentially, with seeded jitter so a herd of schedload workers does not
// re-converge on the same instant — and re-sends, up to maxAttempts total.
// Transport-level failures retry on the same schedule; any other status is a
// terminal error for that request.
const (
	maxAttempts  = 5
	retryBackoff = 5 * time.Millisecond
)

// fireOne sends one request with retries. It returns the final body ("" on
// error), whether the response was degraded, and the latency of the
// successful attempt.
func fireOne(client *http.Client, url, body string, rng *stats.RNG, ph *phaseResult, mu *sync.Mutex) (string, bool, float64) {
	for attempt := 1; ; attempt++ {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		lat := float64(time.Since(t0).Nanoseconds()) / 1e6
		retryable := err != nil
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable {
				mu.Lock()
				ph.shed++
				mu.Unlock()
				retryable = true
			}
			if rerr == nil && resp.StatusCode == http.StatusOK {
				var flag struct {
					Degraded bool `json:"degraded"`
				}
				json.Unmarshal(b, &flag)
				return string(b), flag.Degraded, lat
			}
		}
		if !retryable || attempt == maxAttempts {
			return "", false, 0
		}
		mu.Lock()
		ph.retries++
		backoff := retryBackoff << (attempt - 1)
		jitter := time.Duration(rng.Uniform(0, float64(backoff)))
		mu.Unlock()
		time.Sleep(backoff + jitter)
	}
}

// firePhase fires every request in assignment order from conc concurrent
// clients and collects latencies, response bytes, and robustness counters.
// jitterSeed seeds the per-worker backoff jitter streams.
func firePhase(client *http.Client, base string, bodies []string, assignment []int, conc int, jitterSeed uint64) phaseResult {
	n := len(assignment)
	latencies := make([]float64, n)
	ph := phaseResult{responses: make([]string, n), degraded: make([]bool, n)}
	var mu sync.Mutex
	jitterMaster := stats.NewRNG(jitterSeed ^ 0xbac0ff)
	rngs := make([]*stats.RNG, conc)
	for w := range rngs {
		rngs[w] = jitterMaster.Split()
	}

	start := time.Now()
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idxCh {
				body, deg, lat := fireOne(client, base+"/v1/schedules",
					bodies[assignment[i]], rngs[w], &ph, &mu)
				if body == "" {
					mu.Lock()
					ph.errCount++
					mu.Unlock()
					continue
				}
				if deg {
					mu.Lock()
					ph.nDegraded++
					mu.Unlock()
				}
				latencies[i] = lat
				ph.responses[i] = body
				ph.degraded[i] = deg
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	ph.elapsed = time.Since(start)

	for i, l := range latencies {
		if ph.responses[i] != "" {
			ph.latencies = append(ph.latencies, l)
		}
	}
	sort.Float64s(ph.latencies)
	return ph
}

// statsCapture is one /v1/stats snapshot: the raw bytes for the report plus
// the parsed form for the cache and restart sections.
type statsCapture struct {
	raw    json.RawMessage
	parsed *server.StatsResponse
}

// fetchStats snapshots the server's /v1/stats; nil if unreachable.
func fetchStats(client *http.Client, base string) *statsCapture {
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil
	}
	sc := &statsCapture{raw: json.RawMessage(b)}
	var st server.StatsResponse
	if json.Unmarshal(b, &st) == nil {
		sc.parsed = &st
	}
	return sc
}

// buildBodies generates the unique request bodies: max(1, requests·unique)
// distinct feasible task sets drawn from per-set RNG streams split off the
// master seed.
func buildBodies(requests int, unique float64, seed uint64, cfg workload.RandomConfig) ([]string, int, error) {
	count := int(float64(requests)*unique + 0.5)
	if count < 1 {
		count = 1
	}
	if count > requests {
		count = requests
	}
	master := stats.NewRNG(seed)
	bodies := make([]string, count)
	feasible := func(s *task.Set) bool { return core.Feasible(s, core.Config{}) == nil }
	for i := range bodies {
		rng := master.Split()
		set, err := workload.RandomFeasible(rng, cfg, 100, feasible)
		if err != nil {
			return nil, 0, fmt.Errorf("generating set %d: %w", i, err)
		}
		body, err := json.Marshal(struct {
			Tasks []task.Task `json:"tasks"`
		}{set.Tasks})
		if err != nil {
			return nil, 0, err
		}
		bodies[i] = string(body)
	}
	return bodies, count, nil
}

// percentile returns the p-quantile of sorted xs (nearest-rank).
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(p*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
