package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRunMotivationWithCacheFooter: the cheapest experiment end-to-end, plus
// the cache-stats footer the memoized path prints.
func TestRunMotivationWithCacheFooter(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "motivation"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E1: motivational example") {
		t.Errorf("banner missing:\n%s", got)
	}
	if !strings.Contains(got, "grid cache:") {
		t.Errorf("cache-stats footer missing:\n%s", got)
	}
}

// TestRunCacheOffOmitsFooter: -cache=false runs without a memo and therefore
// without the footer.
func TestRunCacheOffOmitsFooter(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "motivation", "-cache=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "grid cache:") {
		t.Error("cache-stats footer printed despite -cache=false")
	}
}

// TestRunCrosscheckWritesNothingToCSVDirWithoutResults: an unknown -only
// value errors rather than silently writing nothing.
func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-only", "nope"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunFlagErrors: flag-parse failures surface as errors for main's exit
// conventions.
func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunCSVDirReceivesFiles: a cheap harness with CSV output writes into
// the requested directory. Uses the motivation experiment's lack of CSV plus
// crosscheck's absence of CSV — fig6b is the cheapest CSV writer, so trim it
// to one tiny cell via -sets/-reps.
func TestRunCSVDirReceivesFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6b regeneration skipped in -short mode")
	}
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-only", "fig6b", "-sets", "1", "-reps", "2", "-csv", dir}, &out); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Errorf("no CSV files written to %s:\n%s", dir, out.String())
	}
}
