// Command experiments regenerates every table and figure of the paper plus
// the ablation studies, printing text tables to stdout and optionally
// writing CSVs for plotting. See DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	experiments                        # everything, default budget
//	experiments -only fig6a -sets 100 -reps 1000   # the paper's budget
//	experiments -only motivation
//	experiments -csv out/              # also write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		only = flag.String("only", "all",
			"experiment: all, motivation, fig6a, fig6b, slack, cap, overhead, levels, weighted, crosscheck")
		sets    = flag.Int("sets", 20, "random task sets per configuration cell (paper: 100)")
		reps    = flag.Int("reps", 200, "hyper-periods simulated per task set (paper: 1000)")
		seed    = flag.Uint64("seed", 2005, "master seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		starts  = flag.Int("starts", 0, "solver multi-start count per schedule build (0/1 = single)")
		simWork = flag.Int("simworkers", 0, "parallel hyper-period simulation workers per sim run (0 = GOMAXPROCS; results identical for any value)")
		csvDir  = flag.String("csv", "", "directory to write CSV results into")
	)
	flag.Parse()

	common := experiments.Common{Sets: *sets, Reps: *reps, Seed: *seed, Workers: *workers, Starts: *starts, SimWorkers: *simWork}
	want := func(name string) bool { return *only == "all" || *only == name }
	wroteAny := false

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}

	if want("motivation") {
		banner("E1: motivational example (Table 1 / Figs. 1-2)")
		r, err := experiments.Motivation()
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
		wroteAny = true
	}

	if want("fig6a") {
		banner("E2: Fig. 6(a) random task sets")
		start := time.Now()
		cells, err := experiments.Fig6a(experiments.Fig6aConfig{Common: common})
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.Table(cells, fmt.Sprintf(
			"Fig. 6(a): ACS improvement over WCS (%d sets x %d hyper-periods per cell, %v)",
			*sets, *reps, time.Since(start).Round(time.Second))))
		writeCSV("fig6a.csv", experiments.CSV(cells))
		wroteAny = true
	}

	if want("fig6b") {
		banner("E3/E4: Fig. 6(b) real-life applications")
		cells, err := experiments.Fig6b(experiments.Fig6bConfig{Common: common})
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.AppTable(cells))
		writeCSV("fig6b.csv", experiments.AppCSV(cells))
		wroteAny = true
	}

	if want("slack") {
		banner("E5: slack-policy ablation (N=6, ratio 0.1)")
		cells, err := experiments.SlackPolicyAblation(common, 6, 0.1)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.SlackTable(cells))
		wroteAny = true
	}

	if want("cap") {
		banner("E6: sub-instance cap ablation (GAP, ratio 0.1)")
		cells, err := experiments.SubInstanceCapAblation(common, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.CapTable(cells))
		wroteAny = true
	}

	if want("overhead") {
		banner("E7: voltage-transition overhead ablation (N=6, ratio 0.1)")
		cells, err := experiments.TransitionOverheadAblation(common, 6, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.OverheadTable(cells))
		wroteAny = true
	}

	if want("levels") {
		banner("E8: discrete voltage levels ablation (N=6, ratio 0.1)")
		cells, err := experiments.DiscreteLevelAblation(common, 6, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.LevelTable(cells))
		wroteAny = true
	}

	if want("weighted") {
		banner("E10: probability-weighted objective (N=6, ratio 0.1)")
		cells, err := experiments.WeightedObjectiveAblation(common, 6, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.WeightedTable(cells))
		wroteAny = true
	}

	if want("crosscheck") {
		banner("E9: solver cross-check (N=3)")
		r, err := experiments.SolverCrossCheck(common, 3)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
		wroteAny = true
	}

	if !wroteAny {
		fail(fmt.Errorf("unknown experiment %q", *only))
	}
}

func banner(s string) {
	fmt.Println()
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len(s)))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
