// Command experiments regenerates every table and figure of the paper plus
// the ablation studies, printing text tables to stdout and optionally
// writing CSVs for plotting. See DESIGN.md §4 for the experiment index and
// §6 for the grid engine the harnesses run on.
//
// All experiments of one invocation share a single grid runner: one bounded
// worker pool and (unless -cache=false) one content-addressed memo store, so
// harnesses that sweep the same (N, ratio) cell share WCS/ACS solves.
//
// Usage:
//
//	experiments                        # everything, default budget
//	experiments -only fig6a -sets 100 -reps 1000   # the paper's budget
//	experiments -only motivation
//	experiments -csv out/              # also write CSV files
//	experiments -cache=false           # re-solve everything (debugging)
//	experiments -cpuprofile cpu.pprof  # profile a regeneration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cliutil"
	"repro/internal/experiments"
	"repro/internal/grid"
)

func main() {
	cliutil.Exit("experiments", run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		only = fs.String("only", "all",
			"experiment: all, motivation, fig6a, fig6b, slack, cap, overhead, levels, weighted, crosscheck, partition")
		sets       = fs.Int("sets", 20, "random task sets per configuration cell (paper: 100)")
		reps       = fs.Int("reps", 200, "hyper-periods simulated per task set (paper: 1000)")
		seed       = fs.Uint64("seed", 2005, "master seed")
		workers    = fs.Int("workers", 0, "grid worker-pool width (0 = GOMAXPROCS; results identical for any value)")
		starts     = fs.Int("starts", 0, "solver multi-start count per schedule build (0/1 = single)")
		simWork    = fs.Int("simworkers", 0, "parallel hyper-period simulation workers per sim run (0 = GOMAXPROCS; results identical for any value; harnesses whose per-set grid jobs already saturate the pool — fig6a and the random-set ablations — pin their inner sims serial and ignore this)")
		cache      = fs.Bool("cache", true, "memoize schedule solves and plan compilations across experiments (results identical either way)")
		csvDir     = fs.String("csv", "", "directory to write CSV results into")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the regeneration to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var memo *grid.Memo
	if *cache {
		memo = grid.NewMemo()
	}
	g := grid.New(*workers, memo)
	common := experiments.Common{
		Sets: *sets, Reps: *reps, Seed: *seed,
		Workers: *workers, Starts: *starts, SimWorkers: *simWork,
		Grid: g,
	}
	want := func(name string) bool { return *only == "all" || *only == name }
	wroteAny := false

	banner := func(s string) {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, s)
		fmt.Fprintln(stdout, strings.Repeat("=", len(s)))
	}
	writeCSV := func(name, content string) error {
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  wrote %s\n", path)
		return nil
	}

	if want("motivation") {
		banner("E1: motivational example (Table 1 / Figs. 1-2)")
		r, err := experiments.Motivation()
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, r.Render())
		wroteAny = true
	}

	if want("fig6a") {
		banner("E2: Fig. 6(a) random task sets")
		start := time.Now()
		cells, err := experiments.Fig6a(experiments.Fig6aConfig{Common: common})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.Table(cells, fmt.Sprintf(
			"Fig. 6(a): ACS improvement over WCS (%d sets x %d hyper-periods per cell, %v)",
			*sets, *reps, time.Since(start).Round(time.Second))))
		if err := writeCSV("fig6a.csv", experiments.CSV(cells)); err != nil {
			return err
		}
		wroteAny = true
	}

	if want("fig6b") {
		banner("E3/E4: Fig. 6(b) real-life applications")
		cells, err := experiments.Fig6b(experiments.Fig6bConfig{Common: common})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.AppTable(cells))
		if err := writeCSV("fig6b.csv", experiments.AppCSV(cells)); err != nil {
			return err
		}
		wroteAny = true
	}

	if want("slack") {
		banner("E5: slack-policy ablation (N=6, ratio 0.1)")
		cells, err := experiments.SlackPolicyAblation(common, 6, 0.1)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.SlackTable(cells))
		wroteAny = true
	}

	if want("cap") {
		banner("E6: sub-instance cap ablation (GAP, ratio 0.1)")
		cells, err := experiments.SubInstanceCapAblation(common, 0.1, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.CapTable(cells))
		wroteAny = true
	}

	if want("overhead") {
		banner("E7: voltage-transition overhead ablation (N=6, ratio 0.1)")
		cells, err := experiments.TransitionOverheadAblation(common, 6, 0.1, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.OverheadTable(cells))
		wroteAny = true
	}

	if want("levels") {
		banner("E8: discrete voltage levels ablation (N=6, ratio 0.1)")
		cells, err := experiments.DiscreteLevelAblation(common, 6, 0.1, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.LevelTable(cells))
		wroteAny = true
	}

	if want("weighted") {
		banner("E10: probability-weighted objective (N=6, ratio 0.1)")
		cells, err := experiments.WeightedObjectiveAblation(common, 6, 0.1, nil)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.WeightedTable(cells))
		wroteAny = true
	}

	if want("partition") {
		banner("E11: multi-core partitioned scheduling (energy vs. M, FFD vs. worst-fit)")
		start := time.Now()
		cells, err := experiments.PartitionSweep(experiments.PartitionSweepConfig{Common: common})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, experiments.PartitionTable(cells, fmt.Sprintf(
			"E11: global ACS improvement over per-core WCS-at-average (%d sets per cell, %v)",
			*sets, time.Since(start).Round(time.Second))))
		if err := writeCSV("partition.csv", experiments.PartitionCSV(cells)); err != nil {
			return err
		}
		wroteAny = true
	}

	if want("crosscheck") {
		banner("E9: solver cross-check (N=3)")
		r, err := experiments.SolverCrossCheck(common, 3)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, r.Render())
		wroteAny = true
	}

	if !wroteAny {
		return fmt.Errorf("unknown experiment %q", *only)
	}

	if memo != nil {
		st := memo.Stats()
		fmt.Fprintf(stdout, "\ngrid cache: %d schedule solves shared %d times, %d plan compiles shared %d times\n",
			st.ScheduleMisses, st.ScheduleHits, st.PlanMisses, st.PlanHits)
	}

	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote heap profile to %s\n", *memprofile)
	}
	return nil
}
