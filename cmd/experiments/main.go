// Command experiments regenerates every table and figure of the paper plus
// the ablation studies, printing text tables to stdout and optionally
// writing CSVs for plotting. See DESIGN.md §4 for the experiment index and
// §6 for the grid engine the harnesses run on.
//
// All experiments of one invocation share a single grid runner: one bounded
// worker pool and (unless -cache=false) one content-addressed memo store, so
// harnesses that sweep the same (N, ratio) cell share WCS/ACS solves.
//
// Usage:
//
//	experiments                        # everything, default budget
//	experiments -only fig6a -sets 100 -reps 1000   # the paper's budget
//	experiments -only motivation
//	experiments -csv out/              # also write CSV files
//	experiments -cache=false           # re-solve everything (debugging)
//	experiments -cpuprofile cpu.pprof  # profile a regeneration
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/grid"
)

func main() {
	var (
		only = flag.String("only", "all",
			"experiment: all, motivation, fig6a, fig6b, slack, cap, overhead, levels, weighted, crosscheck")
		sets       = flag.Int("sets", 20, "random task sets per configuration cell (paper: 100)")
		reps       = flag.Int("reps", 200, "hyper-periods simulated per task set (paper: 1000)")
		seed       = flag.Uint64("seed", 2005, "master seed")
		workers    = flag.Int("workers", 0, "grid worker-pool width (0 = GOMAXPROCS; results identical for any value)")
		starts     = flag.Int("starts", 0, "solver multi-start count per schedule build (0/1 = single)")
		simWork    = flag.Int("simworkers", 0, "parallel hyper-period simulation workers per sim run (0 = GOMAXPROCS; results identical for any value; harnesses whose per-set grid jobs already saturate the pool — fig6a and the random-set ablations — pin their inner sims serial and ignore this)")
		cache      = flag.Bool("cache", true, "memoize schedule solves and plan compilations across experiments (results identical either way)")
		csvDir     = flag.String("csv", "", "directory to write CSV results into")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the regeneration to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		// fail() exits through os.Exit, which skips defers; register the
		// stop so the profile gets its trailer even on a failed run.
		stopProfile = pprof.StopCPUProfile
		defer pprof.StopCPUProfile()
	}

	var memo *grid.Memo
	if *cache {
		memo = grid.NewMemo()
	}
	g := grid.New(*workers, memo)
	common := experiments.Common{
		Sets: *sets, Reps: *reps, Seed: *seed,
		Workers: *workers, Starts: *starts, SimWorkers: *simWork,
		Grid: g,
	}
	want := func(name string) bool { return *only == "all" || *only == name }
	wroteAny := false

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("  wrote %s\n", path)
	}

	if want("motivation") {
		banner("E1: motivational example (Table 1 / Figs. 1-2)")
		r, err := experiments.Motivation()
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
		wroteAny = true
	}

	if want("fig6a") {
		banner("E2: Fig. 6(a) random task sets")
		start := time.Now()
		cells, err := experiments.Fig6a(experiments.Fig6aConfig{Common: common})
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.Table(cells, fmt.Sprintf(
			"Fig. 6(a): ACS improvement over WCS (%d sets x %d hyper-periods per cell, %v)",
			*sets, *reps, time.Since(start).Round(time.Second))))
		writeCSV("fig6a.csv", experiments.CSV(cells))
		wroteAny = true
	}

	if want("fig6b") {
		banner("E3/E4: Fig. 6(b) real-life applications")
		cells, err := experiments.Fig6b(experiments.Fig6bConfig{Common: common})
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.AppTable(cells))
		writeCSV("fig6b.csv", experiments.AppCSV(cells))
		wroteAny = true
	}

	if want("slack") {
		banner("E5: slack-policy ablation (N=6, ratio 0.1)")
		cells, err := experiments.SlackPolicyAblation(common, 6, 0.1)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.SlackTable(cells))
		wroteAny = true
	}

	if want("cap") {
		banner("E6: sub-instance cap ablation (GAP, ratio 0.1)")
		cells, err := experiments.SubInstanceCapAblation(common, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.CapTable(cells))
		wroteAny = true
	}

	if want("overhead") {
		banner("E7: voltage-transition overhead ablation (N=6, ratio 0.1)")
		cells, err := experiments.TransitionOverheadAblation(common, 6, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.OverheadTable(cells))
		wroteAny = true
	}

	if want("levels") {
		banner("E8: discrete voltage levels ablation (N=6, ratio 0.1)")
		cells, err := experiments.DiscreteLevelAblation(common, 6, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.LevelTable(cells))
		wroteAny = true
	}

	if want("weighted") {
		banner("E10: probability-weighted objective (N=6, ratio 0.1)")
		cells, err := experiments.WeightedObjectiveAblation(common, 6, 0.1, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(experiments.WeightedTable(cells))
		wroteAny = true
	}

	if want("crosscheck") {
		banner("E9: solver cross-check (N=3)")
		r, err := experiments.SolverCrossCheck(common, 3)
		if err != nil {
			fail(err)
		}
		fmt.Print(r.Render())
		wroteAny = true
	}

	if !wroteAny {
		fail(fmt.Errorf("unknown experiment %q", *only))
	}

	if memo != nil {
		st := memo.Stats()
		fmt.Printf("\ngrid cache: %d schedule solves shared %d times, %d plan compiles shared %d times\n",
			st.ScheduleMisses, st.ScheduleHits, st.PlanMisses, st.PlanHits)
	}

	if *memprofile != "" {
		runtime.GC()
		f, err := os.Create(*memprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("wrote heap profile to %s\n", *memprofile)
	}
}

func banner(s string) {
	fmt.Println()
	fmt.Println(s)
	fmt.Println(strings.Repeat("=", len(s)))
}

// stopProfile finalises an in-flight CPU profile before a fail() exit.
var stopProfile func()

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	if stopProfile != nil {
		stopProfile()
		stopProfile = nil
	}
	os.Exit(1)
}
