package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/task"
)

// TestRunDeterministic: equal seeds emit identical bytes.
func TestRunDeterministic(t *testing.T) {
	render := func() string {
		var out strings.Builder
		if err := run([]string{"-n", "4", "-ratio", "0.1", "-seed", "42", "-count", "3"}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("output not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("empty output")
	}
}

// TestRunEmitsValidSets: every emitted document decodes through the
// validating task.Set unmarshaler, with the requested task count.
func TestRunEmitsValidSets(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "3", "-count", "4", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(strings.NewReader(out.String()))
	sets := 0
	for dec.More() {
		var set task.Set
		if err := dec.Decode(&set); err != nil {
			t.Fatalf("set %d does not decode: %v", sets, err)
		}
		if set.N() != 3 {
			t.Errorf("set %d has %d tasks, want 3", sets, set.N())
		}
		sets++
	}
	if sets != 4 {
		t.Errorf("want 4 sets in the stream, got %d", sets)
	}
}

// TestRunSeedsDiffer: different seeds produce different sets (the generator
// actually consumes its seed).
func TestRunSeedsDiffer(t *testing.T) {
	render := func(seed string) string {
		var out strings.Builder
		if err := run([]string{"-n", "4", "-seed", seed}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if render("1") == render("2") {
		t.Error("seeds 1 and 2 emitted identical sets")
	}
}

// TestRunFlagErrors: bad invocations fail without emitting a set.
func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-no-such-flag"},
		{"-n", "0"},
		{"-ratio", "2"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v: expected an error", args)
		}
	}
}
