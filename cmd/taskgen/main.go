// Command taskgen emits random task sets as JSON, using the paper's §4
// generator: N tasks, periods from a harmonically compatible pool, WCEC
// scaled to a target worst-case utilisation, BCEC/WCEC fixed at a given
// ratio.
//
// Output is a pure function of the flags: equal seeds emit identical bytes,
// so generated sets are reproducible fixtures for the other front-ends
// (acsched, dvssim, schedload).
//
// Usage:
//
//	taskgen -n 6 -ratio 0.1 -util 0.7 -seed 42 > taskset.json
//	taskgen -n 4 -count 10 -seed 7 | dvssim
package main

import (
	"encoding/json"
	"flag"
	"io"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	cliutil.Exit("taskgen", run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("taskgen", flag.ContinueOnError)
	var (
		n     = fs.Int("n", 6, "number of tasks")
		ratio = fs.Float64("ratio", 0.5, "BCEC/WCEC ratio in [0,1]")
		util  = fs.Float64("util", 0.7, "worst-case utilisation at max speed")
		seed  = fs.Uint64("seed", 1, "generator seed")
		count = fs.Int("count", 1, "number of task sets to emit (JSON stream)")
		feas  = fs.Bool("feasible", true, "draw until the set is schedulable at Vmax")
	)
	if err := cliutil.ParseFlags(fs, args); err != nil {
		return err
	}

	rng := stats.NewRNG(*seed)
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")

	filter := func(s *task.Set) bool {
		if !*feas {
			return true
		}
		return core.Feasible(s, core.Config{}) == nil
	}
	for i := 0; i < *count; i++ {
		cfg := workload.RandomConfig{N: *n, Ratio: *ratio, Utilization: *util}
		set, err := workload.RandomFeasible(rng, cfg, 100, filter)
		if err != nil {
			return err
		}
		if err := enc.Encode(set); err != nil {
			return err
		}
	}
	return nil
}
