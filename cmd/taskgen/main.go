// Command taskgen emits random task sets as JSON, using the paper's §4
// generator: N tasks, periods from a harmonically compatible pool, WCEC
// scaled to a target worst-case utilisation, BCEC/WCEC fixed at a given
// ratio.
//
// Usage:
//
//	taskgen -n 6 -ratio 0.1 -util 0.7 -seed 42 > taskset.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 6, "number of tasks")
		ratio = flag.Float64("ratio", 0.5, "BCEC/WCEC ratio in [0,1]")
		util  = flag.Float64("util", 0.7, "worst-case utilisation at max speed")
		seed  = flag.Uint64("seed", 1, "generator seed")
		count = flag.Int("count", 1, "number of task sets to emit (JSON stream)")
		feas  = flag.Bool("feasible", true, "draw until the set is schedulable at Vmax")
	)
	flag.Parse()

	rng := stats.NewRNG(*seed)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	filter := func(s *task.Set) bool {
		if !*feas {
			return true
		}
		return core.Feasible(s, core.Config{}) == nil
	}
	for i := 0; i < *count; i++ {
		cfg := workload.RandomConfig{N: *n, Ratio: *ratio, Utilization: *util}
		set, err := workload.RandomFeasible(rng, cfg, 100, filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "taskgen:", err)
			os.Exit(1)
		}
		if err := enc.Encode(set); err != nil {
			fmt.Fprintln(os.Stderr, "taskgen:", err)
			os.Exit(1)
		}
	}
}
