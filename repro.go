// Package repro is a Go reproduction of "Exploiting Dynamic Workload
// Variation in Low Energy Preemptive Task Scheduling" (Leung, Tsoi, Hu,
// Quan — DATE 2005).
//
// The paper's contribution, called ACS here, is an offline voltage scheduler
// for preemptive hard real-time systems on DVS processors: it chooses a
// static end-time and a worst-case workload budget for every sub-instance of
// a fully-preemptive schedule so that runtime energy is minimised when tasks
// take their *average* workload, while deadlines still hold when every task
// takes its *worst-case* workload. The online phase then reclaims slack
// greedily, recomputing each sub-instance's voltage from its static end-time
// and worst-case budget.
//
// This package is the public facade: it re-exports the task model, the
// processor models, the ACS/WCS offline solvers and the runtime simulator
// from the internal packages, wired together the way the examples and
// benchmarks use them. See DESIGN.md for the architecture and DESIGN.md §4
// for the experiment index mapping paper artefacts to harnesses.
//
// Quickstart:
//
//	set, _ := repro.NewTaskSet([]repro.Task{
//		{Name: "ctrl", Period: 20, WCEC: 20, ACEC: 10, BCEC: 5, Ceff: 1},
//		{Name: "log", Period: 40, WCEC: 30, ACEC: 12, BCEC: 6, Ceff: 1},
//	})
//	acs, wcs, _ := repro.BuildBoth(set, repro.ScheduleConfig{})
//	imp, _, _, _ := repro.CompareSchedules(acs, wcs, repro.SimConfig{Hyperperiods: 1000, Seed: 1})
//	fmt.Printf("ACS saves %.1f%% runtime energy over WCS\n", imp)
package repro

import (
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/workload"
)

// Task model re-exports.
type (
	// Task is one periodic task (period = deadline, WCEC/ACEC/BCEC, Ceff).
	Task = task.Task
	// TaskSet is an RM-priority-ordered set of tasks.
	TaskSet = task.Set
	// Instance is one release of a task within a hyper-period.
	Instance = task.Instance
)

// NewTaskSet validates tasks and orders them by rate-monotonic priority.
func NewTaskSet(tasks []Task) (*TaskSet, error) { return task.NewSet(tasks) }

// Processor model re-exports.
type (
	// PowerModel maps supply voltage to clock speed within [VMin, VMax].
	PowerModel = power.Model
	// SimpleInverseModel has cycle time proportional to 1/V (the paper's
	// motivational-example model).
	SimpleInverseModel = power.SimpleInverse
	// AlphaModel is the alpha-power-law delay model of paper eq. (1).
	AlphaModel = power.Alpha
	// DiscreteModel restricts voltages to a finite level set.
	DiscreteModel = power.Discrete
)

// NewSimpleInverseModel returns the tc = K/V model on [vmin, vmax].
func NewSimpleInverseModel(k, vmin, vmax float64) (*SimpleInverseModel, error) {
	return power.NewSimpleInverse(k, vmin, vmax)
}

// NewAlphaModel returns the tc = K·V/(V−Vt)^α model on [vmin, vmax].
func NewAlphaModel(k, vt, alpha, vmin, vmax float64) (*AlphaModel, error) {
	return power.NewAlpha(k, vt, alpha, vmin, vmax)
}

// DefaultModel returns the model the experiments use: tc = 1/V ms per cycle
// on [0.7 V, 4 V].
func DefaultModel() PowerModel { return power.DefaultModel() }

// Offline scheduler re-exports.
type (
	// Schedule is a solved static voltage schedule (end-times + worst-case
	// budgets per sub-instance).
	Schedule = core.Schedule
	// ScheduleConfig tunes the offline solver.
	ScheduleConfig = core.Config
	// Objective selects ACS (AverageCase) or WCS (WorstCase).
	Objective = core.Objective
)

// Objective values.
const (
	AverageCase = core.AverageCase
	WorstCase   = core.WorstCase
)

// BuildSchedule solves a static schedule for the given objective.
func BuildSchedule(set *TaskSet, cfg ScheduleConfig) (*Schedule, error) {
	return core.Build(set, cfg)
}

// BuildBoth solves the WCS baseline first and then ACS warm-started from it,
// which guarantees the ACS solution is never worse than the baseline on the
// average-case objective. This is the pairing every experiment uses.
func BuildBoth(set *TaskSet, cfg ScheduleConfig) (acs, wcs *Schedule, err error) {
	wcsCfg := cfg
	wcsCfg.Objective = core.WorstCase
	wcsCfg.WarmStart = nil
	wcs, err = core.Build(set, wcsCfg)
	if err != nil {
		return nil, nil, err
	}
	acsCfg := cfg
	acsCfg.Objective = core.AverageCase
	acsCfg.WarmStart = wcs
	acs, err = core.Build(set, acsCfg)
	if err != nil {
		return nil, nil, err
	}
	return acs, wcs, nil
}

// Runtime simulator re-exports.
type (
	// SimConfig parameterises a runtime simulation.
	SimConfig = sim.Config
	// SimResult aggregates a simulation run.
	SimResult = sim.Result
	// SlackPolicy selects the runtime slack strategy.
	SlackPolicy = sim.SlackPolicy
	// Distribution draws actual execution cycles for a release.
	Distribution = sim.Distribution
	// Overhead models voltage-transition cost.
	Overhead = sim.Overhead
)

// Slack policies.
const (
	Greedy = sim.Greedy
	Static = sim.Static
	NoDVS  = sim.NoDVS
)

// Simulate runs a schedule under stochastic workloads.
func Simulate(s *Schedule, cfg SimConfig) (*SimResult, error) { return sim.Run(s, cfg) }

// CompareSchedules simulates two schedules under identical workload draws
// and returns the percentage energy improvement of a over b.
func CompareSchedules(a, b *Schedule, cfg SimConfig) (improvementPct float64, ra, rb *SimResult, err error) {
	return sim.Compare(a, b, cfg)
}

// Workload sources.
type (
	// RandomTaskSetConfig parameterises the paper's §4 generator.
	RandomTaskSetConfig = workload.RandomConfig
	// RNG is the deterministic generator all stochastic code uses.
	RNG = stats.RNG
)

// NewRNG returns a deterministic random generator.
func NewRNG(seed uint64) *RNG { return stats.NewRNG(seed) }

// RandomTaskSet draws one task set per the paper's §4 recipe.
func RandomTaskSet(rng *RNG, cfg RandomTaskSetConfig) (*TaskSet, error) {
	return workload.Random(rng, cfg)
}

// CNCTaskSet returns the CNC controller case study (Fig. 6(b)).
func CNCTaskSet(ratio, utilization float64, m PowerModel) (*TaskSet, error) {
	return workload.CNC(ratio, utilization, m)
}

// GAPTaskSet returns the Generic Avionics Platform case study (Fig. 6(b)).
func GAPTaskSet(ratio, utilization float64, m PowerModel) (*TaskSet, error) {
	return workload.GAP(ratio, utilization, m)
}

// Schedulability analysis re-exports (internal/sched).

// ResponseTimes returns the exact worst-case response time of every task
// under preemptive RM at the given cycle time (ms per cycle); an error means
// some task misses its deadline at that speed.
func ResponseTimes(set *TaskSet, cycleTime float64) ([]float64, error) {
	return sched.ResponseTimes(set, cycleTime)
}

// RTASchedulable reports whether exact response-time analysis admits the
// set at the given cycle time.
func RTASchedulable(set *TaskSet, cycleTime float64) bool {
	return sched.RTASchedulable(set, cycleTime)
}

// MinCycleTime returns the slowest uniform speed (largest cycle time) at
// which the set remains schedulable — the uniform-slowdown headroom a static
// voltage scheduler can exploit.
func MinCycleTime(set *TaskSet, fastCycleTime float64) (float64, error) {
	return sched.MinCycleTime(set, fastCycleTime)
}
